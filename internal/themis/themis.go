// Package themis reimplements the Themis collective scheduler (Rashidi et
// al., ISCA '22 [39]) used in the paper's §VI-D co-design study: a
// runtime, bandwidth-aware greedy scheduler that dynamically assigns data
// chunks to network dimensions to balance per-dimension load, instead of
// the fixed ascending/descending multi-rail order.
//
// Each chunk of a Reduce-Scatter/All-Gather/All-Reduce may traverse the
// network dimensions in any order; the traffic a chunk places on a
// dimension shrinks with the product of the group sizes it has already
// reduced over (and grows as it gathers). When a chunk is ready for its
// next stage, the scheduler greedily picks the needed dimension that
// finishes earliest given current port availability.
package themis

import (
	"fmt"
	"math"

	"libra/internal/collective"
	"libra/internal/sim"
	"libra/internal/topology"
)

// Result is a Themis-scheduled collective execution.
type Result struct {
	// Makespan is the collective completion time in seconds.
	Makespan float64
	// DimBusy is per-dimension busy seconds.
	DimBusy []float64
	// Chunks is the chunk count.
	Chunks int
}

// AvgUtilization returns the mean per-dimension busy fraction.
func (r Result) AvgUtilization() float64 {
	if r.Makespan <= 0 || len(r.DimBusy) == 0 {
		return 0
	}
	s := 0.0
	for _, b := range r.DimBusy {
		s += b
	}
	return s / (float64(len(r.DimBusy)) * r.Makespan)
}

// phase tracks a chunk through reduce-scatter then all-gather.
type phase int

const (
	phaseRS phase = iota
	phaseAG
	phaseDone
)

type chunkState struct {
	phase   phase
	doneRS  []bool  // dims reduced so far
	doneAG  []bool  // dims gathered so far
	factor  float64 // product of group sizes reduced so far
	held    float64 // current held bytes (for AG traffic)
	readyAt float64
}

// Schedule runs an m-byte collective over the mapping with Themis's
// greedy chunk-to-dimension policy. Supported ops: ReduceScatter,
// AllGather, AllReduce (All-to-All has no dimension-order freedom).
func Schedule(op collective.Op, m float64, mapping collective.Mapping, bw topology.BWConfig, chunks int) (Result, error) {
	if chunks < 1 {
		return Result{}, fmt.Errorf("themis: chunk count %d must be ≥ 1", chunks)
	}
	if err := mapping.Validate(len(bw)); err != nil {
		return Result{}, err
	}
	if op == collective.AllToAll {
		return Result{}, fmt.Errorf("themis: All-to-All has no dimension-order freedom to schedule")
	}
	ndims := len(bw)
	res := Result{DimBusy: make([]float64, ndims), Chunks: chunks}

	// Active phases only (groups > 1).
	groups := make([]int, ndims)
	var activeDims []int
	totalGroup := 1.0
	for _, p := range mapping.Phases {
		if p.Group > 1 {
			groups[p.Dim] = p.Group
			activeDims = append(activeDims, p.Dim)
			totalGroup *= float64(p.Group)
		}
	}
	if len(activeDims) == 0 || m == 0 {
		return res, nil
	}

	mc := m / float64(chunks)
	states := make([]chunkState, chunks)
	for i := range states {
		states[i] = chunkState{
			doneRS: make([]bool, ndims),
			doneAG: make([]bool, ndims),
			factor: 1,
			held:   mc / totalGroup, // post-RS shard size, used in AG
		}
		switch op {
		case collective.ReduceScatter, collective.AllReduce:
			states[i].phase = phaseRS
		case collective.AllGather:
			states[i].phase = phaseAG
		}
	}

	dimFree := make([]float64, ndims)

	// stageCost returns the bytes chunk s would move on dim d next.
	stageCost := func(s *chunkState, d int) float64 {
		g := float64(groups[d])
		if s.phase == phaseRS {
			return (mc / s.factor) * (g - 1) / g
		}
		return s.held * (g - 1)
	}

	// Optimistic remaining-time lookahead: bestRS[mask] (bestAG[mask]) is
	// the fastest possible queue-free serial time to finish the remaining
	// reduce-scatter (all-gather) stages given the set of already-done
	// active dims encoded in mask (bit i = activeDims[i] done).
	na := len(activeDims)
	full := (1 << na) - 1
	factorOf := make([]float64, full+1)
	for mask := 0; mask <= full; mask++ {
		f := 1.0
		for i, d := range activeDims {
			if mask&(1<<i) != 0 {
				f *= float64(groups[d])
			}
		}
		factorOf[mask] = f
	}
	bestRS := make([]float64, full+1)
	bestAG := make([]float64, full+1)
	for mask := full - 1; mask >= 0; mask-- {
		bestRS[mask] = math.Inf(1)
		bestAG[mask] = math.Inf(1)
		for i, d := range activeDims {
			if mask&(1<<i) != 0 {
				continue
			}
			g := float64(groups[d])
			rs := (mc/factorOf[mask])*(g-1)/g/(bw[d]*1e9) + bestRS[mask|1<<i]
			if rs < bestRS[mask] {
				bestRS[mask] = rs
			}
			// AG sizes mirror RS: gathering with mask done means held
			// size is mc/(totalGroup/factorOf[mask]).
			held := mc / totalGroup * factorOf[mask]
			ag := held*(g-1)/(bw[d]*1e9) + bestAG[mask|1<<i]
			if ag < bestAG[mask] {
				bestAG[mask] = ag
			}
		}
	}
	maskOf := func(done []bool) int {
		mask := 0
		for i, d := range activeDims {
			if done[d] {
				mask |= 1 << i
			}
		}
		return mask
	}
	// remaining returns the optimistic time for chunk s to finish after
	// completing a hypothetical next stage on dim d.
	remaining := func(s *chunkState, d int) float64 {
		if s.phase == phaseRS {
			mask := maskOf(s.doneRS)
			for i, ad := range activeDims {
				if ad == d {
					mask |= 1 << i
				}
			}
			rest := bestRS[mask]
			if op == collective.AllReduce {
				rest += bestAG[0]
			}
			return rest
		}
		mask := maskOf(s.doneAG)
		for i, ad := range activeDims {
			if ad == d {
				mask |= 1 << i
			}
		}
		return bestAG[mask]
	}
	needs := func(s *chunkState, d int) bool {
		if groups[d] == 0 {
			return false
		}
		if s.phase == phaseRS {
			return !s.doneRS[d]
		}
		return !s.doneAG[d]
	}
	advance := func(s *chunkState, d int) {
		g := float64(groups[d])
		if s.phase == phaseRS {
			s.doneRS[d] = true
			s.factor *= g
			for _, ad := range activeDims {
				if !s.doneRS[ad] {
					return
				}
			}
			if op == collective.AllReduce {
				s.phase = phaseAG
			} else {
				s.phase = phaseDone
			}
			return
		}
		s.doneAG[d] = true
		s.held *= g
		for _, ad := range activeDims {
			if !s.doneAG[ad] {
				return
			}
		}
		s.phase = phaseDone
	}

	for {
		// Greedily pick the (chunk, dim) pair minimizing the chunk's
		// projected completion time: stage end plus the optimistic
		// remaining critical path. The lookahead keeps full-size chunks
		// off slow dimensions unless queueing makes the detour pay.
		bestC, bestD := -1, -1
		bestProj, bestEnd, bestStart := math.Inf(1), math.Inf(1), math.Inf(1)
		for ci := range states {
			s := &states[ci]
			if s.phase == phaseDone {
				continue
			}
			for _, d := range activeDims {
				if !needs(s, d) {
					continue
				}
				start := math.Max(s.readyAt, dimFree[d])
				end := start + stageCost(s, d)/(bw[d]*1e9)
				proj := end + remaining(s, d)
				if proj < bestProj-1e-18 || (proj < bestProj+1e-18 && start < bestStart-1e-18) {
					bestProj, bestEnd, bestStart = proj, end, start
					bestC, bestD = ci, d
				}
			}
		}
		if bestC < 0 {
			break // all chunks done
		}
		s := &states[bestC]
		dur := bestEnd - bestStart
		res.DimBusy[bestD] += dur
		dimFree[bestD] = bestEnd
		s.readyAt = bestEnd
		advance(s, bestD)
		if bestEnd > res.Makespan {
			res.Makespan = bestEnd
		}
	}

	// Themis refines from the default multi-rail schedule and never ships
	// a worse one: if the fixed-order pipeline beats the greedy schedule
	// (it can on already-balanced allocations), keep the default.
	base, err := sim.SimulateCollective(op, m, mapping, bw, chunks)
	if err == nil && base.Makespan < res.Makespan {
		res.Makespan = base.Makespan
		copy(res.DimBusy, base.DimBusy)
	}
	return res, nil
}
