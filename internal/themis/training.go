package themis

import (
	"libra/internal/collective"
	"libra/internal/sim"
	"libra/internal/timemodel"
	"libra/internal/topology"
	"libra/internal/workload"
)

// SimulateIteration runs one training iteration with Themis scheduling
// every Reduce-Scatter/All-Gather/All-Reduce (All-to-All keeps the
// baseline multi-rail pipeline, which has no ordering freedom). It mirrors
// sim.SimulateIteration so the two are directly comparable.
func SimulateIteration(cfg sim.TrainingConfig, w *workload.Workload, bw topology.BWConfig) (sim.TrainingResult, error) {
	if cfg.Chunks == 0 {
		cfg.Chunks = sim.DefaultChunks
	}
	if err := bw.Validate(cfg.Net); err != nil {
		return sim.TrainingResult{}, err
	}
	if err := w.Validate(); err != nil {
		return sim.TrainingResult{}, err
	}
	maps, err := timemodel.MapStrategy(cfg.Net, w.Strategy, cfg.Policy)
	if err != nil {
		return sim.TrainingResult{}, err
	}

	res := sim.TrainingResult{DimBusy: make([]float64, cfg.Net.NumDims())}
	commOf := func(cs []workload.Comm) (float64, error) {
		total := 0.0
		for _, c := range cs {
			mapping := maps.ForScope(c.Scope)
			if c.Op == collective.AllToAll {
				pr, err := sim.SimulateCollective(c.Op, c.Bytes, mapping, bw, cfg.Chunks)
				if err != nil {
					return 0, err
				}
				total += pr.Makespan
				for d, b := range pr.DimBusy {
					res.DimBusy[d] += b
				}
				continue
			}
			tr, err := Schedule(c.Op, c.Bytes, mapping, bw, cfg.Chunks)
			if err != nil {
				return 0, err
			}
			total += tr.Makespan
			for d, b := range tr.DimBusy {
				res.DimBusy[d] += b
			}
		}
		return total, nil
	}

	for _, l := range w.Layers {
		n := float64(l.Count)
		fwdComp := cfg.Compute.Time(l.FwdFLOPs, l.FwdBytes)
		tpComp := cfg.Compute.Time(l.TPFLOPs, l.TPBytes)
		dpComp := cfg.Compute.Time(l.DPFLOPs, l.DPBytes)

		preBusy := append([]float64(nil), res.DimBusy...)
		fwdComm, err := commOf(l.FwdComm)
		if err != nil {
			return sim.TrainingResult{}, err
		}
		tpComm, err := commOf(l.TPComm)
		if err != nil {
			return sim.TrainingResult{}, err
		}
		dpComm, err := commOf(l.DPComm)
		if err != nil {
			return sim.TrainingResult{}, err
		}
		for d := range res.DimBusy {
			res.DimBusy[d] = preBusy[d] + n*(res.DimBusy[d]-preBusy[d])
		}
		res.CommTime += n * (fwdComm + tpComm + dpComm)
		res.ComputeOnly += n * (fwdComp + tpComp + dpComp)

		switch cfg.Loop {
		case timemodel.TPDPOverlap:
			bwd := tpComp + max(tpComm, dpComp+dpComm)
			res.Total += n * (fwdComp + fwdComm + bwd)
		default:
			res.Total += n * (fwdComp + fwdComm + tpComp + tpComm + dpComp + dpComm)
		}
	}
	if res.CommTime > 0 {
		sum := 0.0
		for _, b := range res.DimBusy {
			sum += b
		}
		res.Utilization = sum / (float64(len(res.DimBusy)) * res.CommTime)
	}
	return res, nil
}
