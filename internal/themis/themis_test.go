package themis

import (
	"math"
	"testing"

	"libra/internal/collective"
	"libra/internal/compute"
	"libra/internal/sim"
	"libra/internal/timemodel"
	"libra/internal/topology"
	"libra/internal/workload"
)

func approx(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func mapping3D(g1, g2, g3 int) collective.Mapping {
	return collective.Mapping{Phases: []collective.Phase{
		{Dim: 0, Group: g1}, {Dim: 1, Group: g2}, {Dim: 2, Group: g3},
	}}
}

// chunkCriticalPath brute-forces the fastest possible single-chunk
// traversal over all dimension orders: a chunk must reduce over every
// dimension and gather back, and stage sizes depend on the order taken.
// No schedule can finish before one chunk's best critical path.
func chunkCriticalPath(op collective.Op, mc float64, groups []float64, bw topology.BWConfig) float64 {
	n := len(groups)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			// RS along perm, AG along reverse (sizes are order-symmetric).
			t := 0.0
			factor := 1.0
			for _, d := range perm {
				g := groups[d]
				stage := (mc / factor) * (g - 1) / g / (bw[d] * 1e9)
				switch op {
				case collective.AllReduce:
					t += 2 * stage
				default:
					t += stage
				}
				factor *= g
			}
			if t < best {
				best = t
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best
}

// Themis can never beat a single chunk's best critical path, and should
// never lose to the fixed-order multi-rail baseline.
func TestThemisWithinValidBounds(t *testing.T) {
	m := 1e9
	mp := mapping3D(4, 4, 4)
	for _, bw := range []topology.BWConfig{
		{100, 100, 100},
		{300, 60, 20},
		{20, 100, 400},
	} {
		r, err := Schedule(collective.AllReduce, m, mp, bw, 16)
		if err != nil {
			t.Fatal(err)
		}
		lower := chunkCriticalPath(collective.AllReduce, m/16, []float64{4, 4, 4}, bw)
		if r.Makespan < lower*(1-1e-9) {
			t.Errorf("bw %v: Themis %v beats single-chunk critical path %v", bw, r.Makespan, lower)
		}
		base, err := sim.SimulateCollective(collective.AllReduce, m, mp, bw, 16)
		if err != nil {
			t.Fatal(err)
		}
		if r.Makespan > base.Makespan*(1+1e-9) {
			t.Errorf("bw %v: Themis %v loses to fixed order %v", bw, r.Makespan, base.Makespan)
		}
	}
}

// On a poorly provisioned (EqualBW-like) network, Themis's flexible
// ordering must beat the fixed-order multi-rail baseline — the reason the
// paper pairs it with LIBRA (§VI-D).
func TestThemisBeatsFixedOrderOnImbalancedNetwork(t *testing.T) {
	m := 1e9
	mp := mapping3D(4, 4, 4)
	bw := topology.EqualBW(300, 3) // far from traffic-proportional
	base, err := sim.SimulateCollective(collective.AllReduce, m, mp, bw, 16)
	if err != nil {
		t.Fatal(err)
	}
	th, err := Schedule(collective.AllReduce, m, mp, bw, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !(th.Makespan < base.Makespan) {
		t.Errorf("Themis %v should beat fixed-order %v on EqualBW", th.Makespan, base.Makespan)
	}
	if !(th.AvgUtilization() > base.AvgUtilization()) {
		t.Errorf("Themis util %v should beat baseline %v", th.AvgUtilization(), base.AvgUtilization())
	}
}

// On a LIBRA-optimized (traffic-proportional) allocation the fixed order
// is already near-optimal, so Themis's extra benefit is small — the
// paper's point that runtime schedulers work best on well-designed fabrics.
func TestThemisGainShrinksOnBalancedNetwork(t *testing.T) {
	m := 1e9
	mp := mapping3D(4, 4, 4)
	tr := collective.Traffic(collective.AllReduce, m, mp, 3)
	total := tr[0] + tr[1] + tr[2]
	balanced := topology.BWConfig{300 * tr[0] / total, 300 * tr[1] / total, 300 * tr[2] / total}
	equal := topology.EqualBW(300, 3)

	gain := func(bw topology.BWConfig) float64 {
		base, err := sim.SimulateCollective(collective.AllReduce, m, mp, bw, 16)
		if err != nil {
			t.Fatal(err)
		}
		th, err := Schedule(collective.AllReduce, m, mp, bw, 16)
		if err != nil {
			t.Fatal(err)
		}
		return base.Makespan / th.Makespan
	}
	gEqual, gBalanced := gain(equal), gain(balanced)
	if !(gEqual > gBalanced) {
		t.Errorf("Themis gain on EqualBW (%v) should exceed gain on balanced BW (%v)", gEqual, gBalanced)
	}
}

func TestThemisSingleDimMatchesBaseline(t *testing.T) {
	m := 5e8
	mp := collective.Mapping{Phases: []collective.Phase{{Dim: 0, Group: 8}}}
	bw := topology.BWConfig{50}
	base, err := sim.SimulateCollective(collective.AllReduce, m, mp, bw, 8)
	if err != nil {
		t.Fatal(err)
	}
	th, err := Schedule(collective.AllReduce, m, mp, bw, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(base.Makespan, th.Makespan, 1e-9) {
		t.Errorf("single-dim Themis %v != baseline %v", th.Makespan, base.Makespan)
	}
}

func TestThemisBusyAccounting(t *testing.T) {
	// Themis deliberately redistributes traffic across dimensions (the
	// per-dim volume is schedule-dependent), but busy time can never
	// exceed the makespan and utilization stays in (0, 1].
	m := 1e9
	mp := mapping3D(4, 2, 8)
	bw := topology.BWConfig{120, 90, 60}
	r, err := Schedule(collective.AllReduce, m, mp, bw, 32)
	if err != nil {
		t.Fatal(err)
	}
	for d, busy := range r.DimBusy {
		if busy > r.Makespan*(1+1e-9) {
			t.Errorf("dim %d busy %v exceeds makespan %v", d, busy, r.Makespan)
		}
	}
	if u := r.AvgUtilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	// Every chunk reduced+gathered over dim 0 at some size, so no dim with
	// a non-singleton group idles entirely... dim usage is adaptive, but
	// total busy must be positive.
	total := 0.0
	for _, b := range r.DimBusy {
		total += b
	}
	if total <= 0 {
		t.Error("no traffic scheduled")
	}
}

func TestThemisOpsAndErrors(t *testing.T) {
	mp := mapping3D(4, 4, 4)
	bw := topology.BWConfig{10, 10, 10}
	for _, op := range []collective.Op{collective.ReduceScatter, collective.AllGather} {
		r, err := Schedule(op, 1e8, mp, bw, 4)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		lower := chunkCriticalPath(op, 1e8/4, []float64{4, 4, 4}, bw)
		if r.Makespan < lower*(1-1e-9) {
			t.Errorf("%v makespan %v beats single-chunk critical path %v", op, r.Makespan, lower)
		}
	}
	if _, err := Schedule(collective.AllToAll, 1e8, mp, bw, 4); err == nil {
		t.Error("All-to-All should be rejected")
	}
	if _, err := Schedule(collective.AllReduce, 1e8, mp, bw, 0); err == nil {
		t.Error("0 chunks should error")
	}
}

func TestThemisZeroBytes(t *testing.T) {
	r, err := Schedule(collective.AllReduce, 0, mapping3D(4, 4, 4), topology.BWConfig{10, 10, 10}, 4)
	if err != nil || r.Makespan != 0 {
		t.Errorf("zero-byte: %v %v", r, err)
	}
}

func TestThemisIterationBeatsBaselineOnEqualBW(t *testing.T) {
	net := topology.ThreeD1K()
	w, err := workload.MSFT1T(1024)
	if err != nil {
		t.Fatal(err)
	}
	bw := topology.EqualBW(300, 3)
	cfg := sim.TrainingConfig{Net: net, Compute: compute.A100(), Loop: timemodel.NoOverlap, Chunks: 16}
	base, err := sim.SimulateIteration(cfg, w, bw)
	if err != nil {
		t.Fatal(err)
	}
	th, err := SimulateIteration(cfg, w, bw)
	if err != nil {
		t.Fatal(err)
	}
	if !(th.Total <= base.Total*(1+1e-9)) {
		t.Errorf("Themis iteration %v should not lose to baseline %v", th.Total, base.Total)
	}
	if !(th.Total < base.Total) {
		t.Errorf("Themis should strictly help MSFT-1T on EqualBW: %v vs %v", th.Total, base.Total)
	}
}

func TestThemisIterationValidation(t *testing.T) {
	net := topology.ThreeD1K()
	w, err := workload.MSFT1T(1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.TrainingConfig{Net: net, Compute: compute.A100()}
	if _, err := SimulateIteration(cfg, w, topology.BWConfig{1}); err == nil {
		t.Error("bad bw should error")
	}
}
