package workload

import (
	"fmt"

	"libra/internal/collective"
)

// TransformerConfig parameterizes a Megatron-style decoder-only
// transformer. Parameter count ≈ 12·L·H² (+ V·H embedding).
type TransformerConfig struct {
	Name      string
	NumLayers int // L: transformer blocks
	Hidden    int // H: model width
	SeqLen    int // S: tokens per sample
	VocabSize int // V: embedding rows (0 to omit the embedding layer)
}

// Params returns the approximate trainable parameter count.
func (c TransformerConfig) Params() float64 {
	p := 12 * float64(c.NumLayers) * float64(c.Hidden) * float64(c.Hidden)
	p += float64(c.VocabSize) * float64(c.Hidden)
	return p
}

// Validate rejects degenerate configs.
func (c TransformerConfig) Validate() error {
	if c.NumLayers < 1 || c.Hidden < 1 || c.SeqLen < 1 {
		return fmt.Errorf("workload: transformer %q needs positive layers/hidden/seq, got L=%d H=%d S=%d",
			c.Name, c.NumLayers, c.Hidden, c.SeqLen)
	}
	return nil
}

const (
	bytesFP16 = 2.0
	// adamFLOPsPerParam approximates the element-wise Adam update cost.
	adamFLOPsPerParam = 12.0
	// adamBytesPerParam covers reading/writing the fp32 master weight,
	// two moments, and the fp16 gradient/weight.
	adamBytesPerParam = 20.0
)

// Transformer builds a Megatron-LM + ZeRO-2 workload (paper §II-B):
//
//   - The model is TP-way sharded within each transformer block: forward
//     runs 2 TP All-Reduces per block (attention + MLP outputs) of
//     minibatch·S·H fp16 activations each, and backward mirrors them.
//   - ZeRO-2 data parallelism synchronizes gradients with a
//     Reduce-Scatter and re-materializes updated weights with an
//     All-Gather, each of the block's local (1/TP) parameter bytes.
//   - Compute: 2·params·tokens FLOPs forward, 2× that backward, all
//     divided across the TP group; the DP-sharded Adam step is modeled
//     with per-parameter FLOP/byte constants (memory-bound roofline).
//
// minibatch is samples per DP replica per iteration.
func Transformer(cfg TransformerConfig, strategy Strategy, minibatch int) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := strategy.Validate(); err != nil {
		return nil, err
	}
	if minibatch < 1 {
		return nil, fmt.Errorf("workload: transformer %q minibatch %d must be ≥ 1", cfg.Name, minibatch)
	}

	tp, dp := float64(strategy.TP), float64(strategy.DP)
	h := float64(cfg.Hidden)
	tokens := float64(minibatch) * float64(cfg.SeqLen)

	blockParams := 12 * h * h
	localParams := blockParams / tp // parameters held per NPU per block

	block := Layer{
		Name:  "transformer-block",
		Count: cfg.NumLayers,

		FwdFLOPs: 2 * blockParams * tokens / tp,
		FwdBytes: localParams*bytesFP16 + tokens*h*bytesFP16,

		TPFLOPs: 4 * blockParams * tokens / tp, // dgrad + wgrad ≈ 2× forward
		TPBytes: 2 * (localParams*bytesFP16 + tokens*h*bytesFP16),

		// ZeRO-2 shards the optimizer state DP-ways.
		DPFLOPs: adamFLOPsPerParam * localParams / dp,
		DPBytes: adamBytesPerParam * localParams / dp,
	}
	if strategy.TP > 1 {
		activation := tokens * h * bytesFP16
		block.FwdComm = []Comm{
			{Op: collective.AllReduce, Bytes: activation, Scope: TPScope},
			{Op: collective.AllReduce, Bytes: activation, Scope: TPScope},
		}
		block.TPComm = []Comm{
			{Op: collective.AllReduce, Bytes: activation, Scope: TPScope},
			{Op: collective.AllReduce, Bytes: activation, Scope: TPScope},
		}
	}
	if strategy.DP > 1 {
		grad := localParams * bytesFP16
		block.DPComm = []Comm{
			{Op: collective.ReduceScatter, Bytes: grad, Scope: DPScope},
			{Op: collective.AllGather, Bytes: grad, Scope: DPScope},
		}
	}

	layers := []Layer{block}

	if cfg.VocabSize > 0 {
		embParams := float64(cfg.VocabSize) * h
		localEmb := embParams / tp
		emb := Layer{
			Name:     "embedding",
			Count:    1,
			FwdFLOPs: 2 * embParams * tokens / tp,
			FwdBytes: localEmb * bytesFP16,
			TPFLOPs:  4 * embParams * tokens / tp,
			TPBytes:  2 * localEmb * bytesFP16,
			DPFLOPs:  adamFLOPsPerParam * localEmb / dp,
			DPBytes:  adamBytesPerParam * localEmb / dp,
		}
		if strategy.TP > 1 {
			// Vocab-parallel embedding/LM head: one activation
			// All-Reduce each way.
			activation := tokens * h * bytesFP16
			emb.FwdComm = []Comm{{Op: collective.AllReduce, Bytes: activation, Scope: TPScope}}
			emb.TPComm = []Comm{{Op: collective.AllReduce, Bytes: activation, Scope: TPScope}}
		}
		if strategy.DP > 1 {
			grad := localEmb * bytesFP16
			emb.DPComm = []Comm{
				{Op: collective.ReduceScatter, Bytes: grad, Scope: DPScope},
				{Op: collective.AllGather, Bytes: grad, Scope: DPScope},
			}
		}
		layers = append(layers, emb)
	}

	w := &Workload{
		Name:      cfg.Name,
		Params:    cfg.Params(),
		Strategy:  strategy,
		Minibatch: minibatch,
		Layers:    layers,
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
