package workload

import (
	"fmt"

	"libra/internal/collective"
)

// Table II parallelization defaults.
const (
	// DefaultMinibatch is the per-replica minibatch the paper's Fig. 1
	// caption fixes for data-parallel workloads.
	DefaultMinibatch = 32

	TuringNLGTP = 1
	GPT3TP      = 16
	MSFT1TTP    = 128
)

// Published architecture shapes.
var (
	// TuringNLGConfig: 17B parameters — 78 layers × hidden 4256.
	TuringNLGConfig = TransformerConfig{Name: "Turing-NLG", NumLayers: 78, Hidden: 4256, SeqLen: 1024, VocabSize: 50257}
	// GPT3Config: 175B parameters — 96 layers × hidden 12288.
	GPT3Config = TransformerConfig{Name: "GPT-3", NumLayers: 96, Hidden: 12288, SeqLen: 2048, VocabSize: 50257}
	// MSFT1TConfig: the 1T-parameter configuration from the ZeRO paper —
	// 128 layers × hidden 25600, sequence length 1024.
	MSFT1TConfig = TransformerConfig{Name: "MSFT-1T", NumLayers: 128, Hidden: 25600, SeqLen: 1024, VocabSize: 50257}
)

// hybridPreset builds a transformer preset under its Table II default
// strategy, resolving the shape through TransformerPresetConfig so the
// preset table exists exactly once.
func hybridPreset(name string, npus int) (*Workload, error) {
	cfg, tp, err := TransformerPresetConfig(name)
	if err != nil {
		return nil, err
	}
	if npus%tp != 0 {
		return nil, fmt.Errorf("workload: %s needs TP=%d to divide %d NPUs", cfg.Name, tp, npus)
	}
	return Transformer(cfg, Strategy{TP: tp, DP: npus / tp}, DefaultMinibatch)
}

// TuringNLG builds the 17B Turing-NLG workload (Table II: TP=1, pure DP).
func TuringNLG(npus int) (*Workload, error) { return hybridPreset("Turing-NLG", npus) }

// GPT3 builds the 175B GPT-3 workload (Table II: TP=16).
func GPT3(npus int) (*Workload, error) { return hybridPreset("GPT-3", npus) }

// MSFT1T builds the 1T-parameter MSFT-1T workload (Table II: TP=128).
func MSFT1T(npus int) (*Workload, error) { return hybridPreset("MSFT-1T", npus) }

// MSFT1TWithTP builds MSFT-1T under an alternative HP-(tp, npus/tp)
// strategy — the Fig. 21 network × parallelization co-design study. The
// paper relaxes the NPU-memory constraint for this experiment (assuming
// CXL/CPU-extended memory), so any TP dividing the NPU count is accepted.
//
// The global batch is held fixed across strategies (at the size implied by
// the default HP-(128, npus/128) configuration with DefaultMinibatch per
// replica), so the per-replica minibatch scales with TP. This is what
// creates the paper's TP/DP communication tradeoff: TP activation traffic
// grows with the replica batch (∝ TP) while DP gradient traffic shrinks
// (∝ 1/TP), peaking training throughput at a mid-range strategy.
func MSFT1TWithTP(npus, tp int) (*Workload, error) {
	if npus < 1 || tp < 1 || npus%tp != 0 {
		return nil, fmt.Errorf("workload: TP=%d does not divide %d NPUs", tp, npus)
	}
	globalBatch := DefaultMinibatch * npus / MSFT1TTP
	dp := npus / tp
	mb := globalBatch / dp
	if mb < 1 {
		mb = 1
	}
	w, err := Transformer(MSFT1TConfig, Strategy{TP: tp, DP: dp}, mb)
	if err != nil {
		return nil, err
	}
	w.Name = fmt.Sprintf("MSFT-1T/HP-(%d,%d)", tp, dp)
	return w, nil
}

// TransformerPresetConfig resolves a Table II transformer preset to its
// architecture shape and default tensor-parallel degree — the handle the
// co-design subsystem needs to re-instantiate the model under alternative
// strategies. Non-transformer presets (DLRM, ResNet-50) and unknown names
// fail: their parallelization is structural, not sweepable.
func TransformerPresetConfig(name string) (TransformerConfig, int, error) {
	switch name {
	case "Turing-NLG":
		return TuringNLGConfig, TuringNLGTP, nil
	case "GPT-3":
		return GPT3Config, GPT3TP, nil
	case "MSFT-1T":
		return MSFT1TConfig, MSFT1TTP, nil
	default:
		return TransformerConfig{}, 0, fmt.Errorf("workload: preset %q is not a strategy-sweepable transformer (want Turing-NLG, GPT-3, or MSFT-1T)", name)
	}
}

// DLRMParams is Table II's DLRM size: 57M parameters in the MLP layers.
const DLRMParams = 57e6

// DLRM builds the recommendation workload: data-parallel MLPs (ZeRO-2)
// plus model-parallel embedding tables sharded across all NPUs, exchanged
// with All-to-All in both forward and backward (Table II: "TP across all
// NPUs"). Embedding lookup constants follow the open-source DLRM
// benchmark: 26 sparse features × 128-dim embeddings.
func DLRM(npus int) (*Workload, error) {
	if npus < 1 {
		return nil, fmt.Errorf("workload: DLRM needs ≥ 1 NPU, got %d", npus)
	}
	const (
		numTables = 26
		embDim    = 128
	)
	mb := float64(DefaultMinibatch)
	// Post-pooling embedding exchange: every sample carries one embDim
	// vector per table.
	a2aBytes := mb * numTables * embDim * bytesFP16

	// 8 MLP layers share the 57M parameters (bottom 3 + top 5).
	const mlpLayers = 8
	perLayer := DLRMParams / mlpLayers
	dp := float64(npus)

	mlp := Layer{
		Name:     "mlp",
		Count:    mlpLayers,
		FwdFLOPs: 2 * perLayer * mb,
		FwdBytes: perLayer * bytesFP16,
		TPFLOPs:  4 * perLayer * mb,
		TPBytes:  2 * perLayer * bytesFP16,
		DPFLOPs:  adamFLOPsPerParam * perLayer / dp,
		DPBytes:  adamBytesPerParam * perLayer / dp,
	}
	if npus > 1 {
		grad := perLayer * bytesFP16
		mlp.DPComm = []Comm{
			{Op: collective.ReduceScatter, Bytes: grad, Scope: DPScope},
			{Op: collective.AllGather, Bytes: grad, Scope: DPScope},
		}
	}

	emb := Layer{
		Name:     "embedding",
		Count:    1,
		FwdFLOPs: mb * numTables * embDim, // pooling
		FwdBytes: a2aBytes,
		TPFLOPs:  mb * numTables * embDim,
		TPBytes:  a2aBytes,
		// Embedding gradients are local to their shard: no DP comm.
		DPFLOPs: adamFLOPsPerParam * mb * numTables * embDim / dp,
		DPBytes: adamBytesPerParam * mb * numTables * embDim / dp,
	}
	if npus > 1 {
		emb.FwdComm = []Comm{{Op: collective.AllToAll, Bytes: a2aBytes, Scope: AllScope}}
		emb.TPComm = []Comm{{Op: collective.AllToAll, Bytes: a2aBytes, Scope: AllScope}}
	}

	w := &Workload{
		Name:      "DLRM",
		Params:    DLRMParams,
		Strategy:  Strategy{TP: 1, DP: npus},
		Minibatch: DefaultMinibatch,
		Layers:    []Layer{emb, mlp},
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// ResNet50Params is Table II's ResNet-50 size.
const ResNet50Params = 25.6e6

// resNetStage is one stage group of ResNet-50 with its parameter count and
// forward GFLOPs per image (224×224 input).
type resNetStage struct {
	name      string
	params    float64
	gflopsImg float64
}

var resNet50Stages = []resNetStage{
	{"conv1", 9.4e3, 0.24},
	{"layer1", 215.8e3, 0.69},
	{"layer2", 1.22e6, 1.04},
	{"layer3", 7.10e6, 1.47},
	{"layer4", 14.96e6, 0.81},
	{"fc", 2.05e6, 0.004},
}

// ResNet50 builds the vision workload: pure data parallelism with ZeRO-2
// gradient synchronization per stage group (Table II: TP=1).
func ResNet50(npus int) (*Workload, error) {
	if npus < 1 {
		return nil, fmt.Errorf("workload: ResNet-50 needs ≥ 1 NPU, got %d", npus)
	}
	mb := float64(DefaultMinibatch)
	dp := float64(npus)
	layers := make([]Layer, 0, len(resNet50Stages))
	for _, s := range resNet50Stages {
		l := Layer{
			Name:     s.name,
			Count:    1,
			FwdFLOPs: s.gflopsImg * 1e9 * mb,
			FwdBytes: s.params * bytesFP16,
			TPFLOPs:  2 * s.gflopsImg * 1e9 * mb,
			TPBytes:  2 * s.params * bytesFP16,
			DPFLOPs:  adamFLOPsPerParam * s.params / dp,
			DPBytes:  adamBytesPerParam * s.params / dp,
		}
		if npus > 1 {
			grad := s.params * bytesFP16
			l.DPComm = []Comm{
				{Op: collective.ReduceScatter, Bytes: grad, Scope: DPScope},
				{Op: collective.AllGather, Bytes: grad, Scope: DPScope},
			}
		}
		layers = append(layers, l)
	}
	w := &Workload{
		Name:      "ResNet-50",
		Params:    ResNet50Params,
		Strategy:  Strategy{TP: 1, DP: npus},
		Minibatch: DefaultMinibatch,
		Layers:    layers,
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// Preset builds a Table II workload by name on the given NPU count.
func Preset(name string, npus int) (*Workload, error) {
	switch name {
	case "Turing-NLG":
		return TuringNLG(npus)
	case "GPT-3":
		return GPT3(npus)
	case "MSFT-1T":
		return MSFT1T(npus)
	case "DLRM":
		return DLRM(npus)
	case "ResNet-50":
		return ResNet50(npus)
	default:
		return nil, fmt.Errorf("workload: unknown preset %q", name)
	}
}

// PresetNames lists Table II workloads in paper order.
func PresetNames() []string {
	return []string{"Turing-NLG", "GPT-3", "MSFT-1T", "DLRM", "ResNet-50"}
}
