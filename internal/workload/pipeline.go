package workload

import (
	"fmt"

	"libra/internal/collective"
)

// TransformerPP builds a Megatron-style transformer under a 3-way hybrid
// strategy HP-(TP, PP, DP): TP-way tensor sharding within each of PP
// pipeline stages, DP-way data parallelism across replicas (§IV-C's
// pipeline-parallel extension — stage boundaries exchange direct
// NPU-to-NPU activation/gradient messages priced as m/B).
//
// The iteration is modeled from one stage's perspective (stages are
// symmetric):
//
//   - Each NPU holds L/PP transformer blocks (L must divide by PP).
//   - The minibatch is split into microbatches GPipe-style; every
//     microbatch crossing a stage boundary moves
//     microbatchTokens·H·fp16 bytes forward and the same backward, so a
//     stage's per-iteration point-to-point volume is
//     2 · microbatches · (mb/microbatches)·S·H·2 = 2·mb·S·H·2 bytes.
//   - The pipeline fill/drain bubble inflates compute by
//     (microbatches + PP − 1)/microbatches, applied to per-layer compute.
//
// minibatch is samples per DP replica per iteration; microbatches must
// divide it.
func TransformerPP(cfg TransformerConfig, s Strategy, minibatch, microbatches int) (*Workload, error) {
	if s.PPOr1() == 1 {
		return Transformer(cfg, s, minibatch)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if microbatches < 1 {
		return nil, fmt.Errorf("workload: %s needs ≥ 1 microbatches, got %d", cfg.Name, microbatches)
	}
	if minibatch%microbatches != 0 {
		return nil, fmt.Errorf("workload: %s minibatch %d must divide into %d microbatches", cfg.Name, minibatch, microbatches)
	}
	if cfg.NumLayers%s.PP != 0 {
		return nil, fmt.Errorf("workload: %s has %d layers, not divisible into %d pipeline stages", cfg.Name, cfg.NumLayers, s.PP)
	}

	// Build the single-stage workload: L/PP layers under HP-(TP, DP).
	stageCfg := cfg
	stageCfg.NumLayers = cfg.NumLayers / s.PP
	if s.PP > 1 {
		// Embedding lives on the first/last stages only; drop it from the
		// per-stage model and keep the uniform-stage approximation.
		stageCfg.VocabSize = 0
	}
	w, err := Transformer(stageCfg, Strategy{TP: s.TP, DP: s.DP}, minibatch)
	if err != nil {
		return nil, err
	}
	w.Name = cfg.Name
	w.Params = cfg.Params()
	w.Strategy = s

	// Pipeline bubble: (microbatches + PP − 1)/microbatches on compute.
	bubble := float64(microbatches+s.PP-1) / float64(microbatches)
	for i := range w.Layers {
		w.Layers[i].FwdFLOPs *= bubble
		w.Layers[i].FwdBytes *= bubble
		w.Layers[i].TPFLOPs *= bubble
		w.Layers[i].TPBytes *= bubble
	}

	// Stage-boundary point-to-point traffic: activations forward,
	// gradients backward, one message per microbatch, TP-sharded.
	tokens := float64(minibatch) * float64(cfg.SeqLen)
	p2pBytes := tokens * float64(cfg.Hidden) * bytesFP16 / float64(s.TP)
	boundary := Layer{
		Name:    "pp-boundary",
		Count:   1,
		FwdComm: []Comm{{Op: collective.PointToPoint, Bytes: p2pBytes, Scope: PPScope}},
		TPComm:  []Comm{{Op: collective.PointToPoint, Bytes: p2pBytes, Scope: PPScope}},
	}
	w.Layers = append(w.Layers, boundary)
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}
