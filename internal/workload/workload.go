// Package workload describes DNN training workloads the way LIBRA's
// analytical model consumes them: per-layer compute costs (FLOPs and bytes)
// and per-layer collective-communication calls, split into the six
// training-loop stages of paper Fig. 5 (Fwd-Comp, Fwd-Comm, TP-Comp,
// TP-Comm, DP-Comp, DP-Comm).
//
// The package ships the five evaluation workloads of Table II —
// Turing-NLG (17B), GPT-3 (175B), MSFT-1T (1T), DLRM, and ResNet-50 —
// plus a parametric Megatron-style transformer generator so users can
// model their own LLMs.
package workload

import (
	"fmt"

	"libra/internal/collective"
)

// Scope identifies which parallelization group a collective spans.
type Scope int

const (
	// TPScope collectives run within a tensor-parallel group.
	TPScope Scope = iota
	// DPScope collectives run within a data-parallel group.
	DPScope
	// AllScope collectives span every NPU in the system (e.g. DLRM's
	// embedding All-to-All).
	AllScope
	// PPScope communications cross adjacent pipeline-parallel stages
	// (point-to-point activation/gradient transfers, §IV-C).
	PPScope
)

// String names the scope.
func (s Scope) String() string {
	switch s {
	case TPScope:
		return "TP"
	case DPScope:
		return "DP"
	case AllScope:
		return "All"
	case PPScope:
		return "PP"
	default:
		return fmt.Sprintf("Scope(%d)", int(s))
	}
}

// Comm is one collective call issued by a layer.
type Comm struct {
	Op    collective.Op
	Bytes float64 // collective payload m in bytes (per participating NPU)
	Scope Scope
}

// Layer is one (group of identical) model layer(s) with its training-loop
// stage costs. Compute fields are per-NPU per-layer; Count multiplies the
// whole entry.
type Layer struct {
	Name  string
	Count int // number of identical layers this entry stands for (≥ 1)

	// Forward pass.
	FwdFLOPs float64 // per-NPU forward compute
	FwdBytes float64 // per-NPU forward memory traffic (roofline)
	FwdComm  []Comm

	// Backward pass compute + tensor-parallel gradient communication
	// ("TP-Comp" / "TP-Comm" in Fig. 5).
	TPFLOPs float64
	TPBytes float64
	TPComm  []Comm

	// Optimizer step + data-parallel gradient synchronization
	// ("DP-Comp" / "DP-Comm").
	DPFLOPs float64
	DPBytes float64
	DPComm  []Comm
}

// Strategy is a hybrid parallelization HP-(TP, DP) optionally extended
// with pipeline parallelism: the model is TP-way tensor-sharded within
// each pipeline stage, PP-way stage-sharded, and the dataset DP-way
// split, occupying TP×PP×DP NPUs. PP == 0 means no pipeline parallelism
// (treated as 1).
// The zero values carry "not set" through JSON: a report entry for a
// strategy that never resolved (e.g. a TP×PP grid cell that does not
// divide the NPU count) elides DP rather than emitting an invalid dp: 0.
type Strategy struct {
	TP int `json:"tp,omitempty"`
	DP int `json:"dp,omitempty"`
	PP int `json:"pp,omitempty"`
}

// PPOr1 returns the pipeline degree, treating the zero value as 1.
func (s Strategy) PPOr1() int {
	if s.PP < 1 {
		return 1
	}
	return s.PP
}

// NPUs returns the NPU count the strategy occupies.
func (s Strategy) NPUs() int { return s.TP * s.PPOr1() * s.DP }

// String renders like "HP-(128, 32)" or "HP-(16, 4, 32)" with pipelining.
func (s Strategy) String() string {
	if s.PPOr1() > 1 {
		return fmt.Sprintf("HP-(%d, %d, %d)", s.TP, s.PP, s.DP)
	}
	return fmt.Sprintf("HP-(%d, %d)", s.TP, s.DP)
}

// Validate rejects non-positive factors.
func (s Strategy) Validate() error {
	if s.TP < 1 || s.DP < 1 {
		return fmt.Errorf("workload: strategy %v must have TP ≥ 1 and DP ≥ 1", s)
	}
	if s.PP < 0 {
		return fmt.Errorf("workload: strategy %v must have PP ≥ 0", s)
	}
	return nil
}

// Workload is a complete training workload: a layer list under a specific
// parallelization strategy.
type Workload struct {
	Name      string
	Params    float64 // total trainable parameters
	Strategy  Strategy
	Minibatch int // samples per data-parallel replica per iteration
	Layers    []Layer
}

// Validate checks structural sanity.
func (w *Workload) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: empty name")
	}
	if err := w.Strategy.Validate(); err != nil {
		return err
	}
	if w.Minibatch < 1 {
		return fmt.Errorf("workload %s: minibatch %d must be ≥ 1", w.Name, w.Minibatch)
	}
	if len(w.Layers) == 0 {
		return fmt.Errorf("workload %s: no layers", w.Name)
	}
	for i, l := range w.Layers {
		if l.Count < 1 {
			return fmt.Errorf("workload %s: layer %d (%s) count %d must be ≥ 1", w.Name, i, l.Name, l.Count)
		}
		if l.FwdFLOPs < 0 || l.TPFLOPs < 0 || l.DPFLOPs < 0 || l.FwdBytes < 0 || l.TPBytes < 0 || l.DPBytes < 0 {
			return fmt.Errorf("workload %s: layer %d (%s) has negative cost", w.Name, i, l.Name)
		}
		for _, cs := range [][]Comm{l.FwdComm, l.TPComm, l.DPComm} {
			for _, c := range cs {
				if c.Bytes < 0 {
					return fmt.Errorf("workload %s: layer %d (%s) has negative comm bytes", w.Name, i, l.Name)
				}
			}
		}
	}
	return nil
}

// ScopeSize returns the group size a scope spans under the workload's
// strategy (AllScope spans TP×PP×DP; PPScope spans the PP degree).
func (w *Workload) ScopeSize(s Scope) int {
	switch s {
	case TPScope:
		return w.Strategy.TP
	case DPScope:
		return w.Strategy.DP
	case PPScope:
		return w.Strategy.PPOr1()
	default:
		return w.Strategy.NPUs()
	}
}

// CommVolume returns the network-independent total bytes each NPU
// transfers per training iteration, using the flat (single-dimension)
// collective traffic factors — the quantity Fig. 1 plots. A collective of
// m bytes over a group of n contributes m·(n−1)/n (RS, AG, A2A) or
// 2m·(n−1)/n (AR).
func (w *Workload) CommVolume() float64 {
	total := 0.0
	add := func(cs []Comm) {
		for _, c := range cs {
			n := float64(w.ScopeSize(c.Scope))
			if n <= 1 {
				continue
			}
			factor := (n - 1) / n
			if c.Op == collective.AllReduce {
				factor *= 2
			}
			total += c.Bytes * factor
		}
	}
	for _, l := range w.Layers {
		for i := 0; i < l.Count; i++ {
			add(l.FwdComm)
			add(l.TPComm)
			add(l.DPComm)
		}
	}
	return total
}

// TotalFLOPs returns the per-NPU FLOPs per iteration across all stages.
func (w *Workload) TotalFLOPs() float64 {
	total := 0.0
	for _, l := range w.Layers {
		total += float64(l.Count) * (l.FwdFLOPs + l.TPFLOPs + l.DPFLOPs)
	}
	return total
}
