package workload

import (
	"math"
	"strings"
	"testing"

	"libra/internal/collective"
)

func approx(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestStrategy(t *testing.T) {
	s := Strategy{TP: 128, DP: 32}
	if s.NPUs() != 4096 {
		t.Errorf("NPUs = %d", s.NPUs())
	}
	if got := s.String(); got != "HP-(128, 32)" {
		t.Errorf("String = %q", got)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("valid strategy rejected: %v", err)
	}
	for _, bad := range []Strategy{{TP: 0, DP: 4}, {TP: 4, DP: 0}, {TP: -1, DP: -1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("strategy %v unexpectedly valid", bad)
		}
	}
}

func TestTransformerParamCounts(t *testing.T) {
	cases := []struct {
		cfg  TransformerConfig
		want float64
		tol  float64
	}{
		{TuringNLGConfig, 17e9, 0.05},
		{GPT3Config, 175e9, 0.05},
		{MSFT1TConfig, 1e12, 0.05},
	}
	for _, c := range cases {
		got := c.cfg.Params()
		if math.Abs(got-c.want)/c.want > c.tol {
			t.Errorf("%s params = %.3g, want %.3g ± %.0f%%", c.cfg.Name, got, c.want, c.tol*100)
		}
	}
}

func TestTableIIPresets(t *testing.T) {
	const npus = 4096
	cases := []struct {
		name   string
		wantTP int
	}{
		{"Turing-NLG", 1},
		{"GPT-3", 16},
		{"MSFT-1T", 128},
		{"DLRM", 1},
		{"ResNet-50", 1},
	}
	for _, c := range cases {
		w, err := Preset(c.name, npus)
		if err != nil {
			t.Fatalf("Preset(%s): %v", c.name, err)
		}
		if w.Strategy.TP != c.wantTP {
			t.Errorf("%s TP = %d, want %d", c.name, w.Strategy.TP, c.wantTP)
		}
		if w.Strategy.NPUs() != npus {
			t.Errorf("%s occupies %d NPUs, want %d", c.name, w.Strategy.NPUs(), npus)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.name, err)
		}
	}
	if _, err := Preset("bogus", npus); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestPresetNamesBuildable(t *testing.T) {
	for _, name := range PresetNames() {
		if _, err := Preset(name, 2048); err != nil {
			t.Errorf("Preset(%s, 2048): %v", name, err)
		}
	}
}

func TestTransformerTPDivisibility(t *testing.T) {
	if _, err := GPT3(100); err == nil {
		t.Error("GPT-3 on 100 NPUs (TP=16 not dividing) should error")
	}
}

func TestTransformerCommStructure(t *testing.T) {
	w, err := GPT3(4096)
	if err != nil {
		t.Fatal(err)
	}
	block := w.Layers[0]
	if block.Count != 96 {
		t.Errorf("GPT-3 block count = %d", block.Count)
	}
	// Megatron: 2 TP All-Reduces forward, 2 backward.
	if len(block.FwdComm) != 2 || len(block.TPComm) != 2 {
		t.Fatalf("TP comm calls fwd=%d bwd=%d, want 2/2", len(block.FwdComm), len(block.TPComm))
	}
	wantAct := 32.0 * 2048 * 12288 * 2
	for _, c := range append(append([]Comm{}, block.FwdComm...), block.TPComm...) {
		if c.Op != collective.AllReduce || c.Scope != TPScope || !approx(c.Bytes, wantAct, 1e-9) {
			t.Errorf("TP comm = %+v, want AR of %.0f bytes", c, wantAct)
		}
	}
	// ZeRO-2: RS + AG of the local (1/TP) block gradient bytes.
	if len(block.DPComm) != 2 {
		t.Fatalf("DP comm calls = %d", len(block.DPComm))
	}
	wantGrad := 12.0 * 12288 * 12288 * 2 / 16
	if block.DPComm[0].Op != collective.ReduceScatter || block.DPComm[1].Op != collective.AllGather {
		t.Errorf("ZeRO-2 DP comm ops = %v, %v", block.DPComm[0].Op, block.DPComm[1].Op)
	}
	for _, c := range block.DPComm {
		if c.Scope != DPScope || !approx(c.Bytes, wantGrad, 1e-9) {
			t.Errorf("DP comm = %+v, want %.0f bytes", c, wantGrad)
		}
	}
}

func TestPureDPHasNoTPComm(t *testing.T) {
	w, err := TuringNLG(1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range w.Layers {
		if len(l.FwdComm) != 0 || len(l.TPComm) != 0 {
			t.Errorf("layer %s has TP comm with TP=1", l.Name)
		}
		if len(l.DPComm) == 0 {
			t.Errorf("layer %s missing DP comm", l.Name)
		}
	}
}

func TestSingleNPUNoComm(t *testing.T) {
	w, err := Transformer(TuringNLGConfig, Strategy{TP: 1, DP: 1}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.CommVolume(); got != 0 {
		t.Errorf("1-NPU comm volume = %v", got)
	}
}

func TestBackwardIsTwiceForward(t *testing.T) {
	w, err := GPT3(4096)
	if err != nil {
		t.Fatal(err)
	}
	b := w.Layers[0]
	if !approx(b.TPFLOPs, 2*b.FwdFLOPs, 1e-12) {
		t.Errorf("bwd FLOPs %v, want 2× fwd %v", b.TPFLOPs, b.FwdFLOPs)
	}
}

func TestDLRMStructure(t *testing.T) {
	w, err := DLRM(1024)
	if err != nil {
		t.Fatal(err)
	}
	var emb, mlp *Layer
	for i := range w.Layers {
		switch w.Layers[i].Name {
		case "embedding":
			emb = &w.Layers[i]
		case "mlp":
			mlp = &w.Layers[i]
		}
	}
	if emb == nil || mlp == nil {
		t.Fatal("DLRM missing embedding or mlp layers")
	}
	if len(emb.FwdComm) != 1 || emb.FwdComm[0].Op != collective.AllToAll || emb.FwdComm[0].Scope != AllScope {
		t.Errorf("embedding fwd comm = %+v, want All-to-All across all NPUs", emb.FwdComm)
	}
	if len(emb.TPComm) != 1 || emb.TPComm[0].Op != collective.AllToAll {
		t.Errorf("embedding bwd comm = %+v", emb.TPComm)
	}
	// MLP parameters must total Table II's 57M.
	total := float64(mlp.Count) * mlp.FwdBytes / bytesFP16
	if !approx(total, DLRMParams, 1e-9) {
		t.Errorf("MLP params = %v, want %v", total, DLRMParams)
	}
}

func TestResNet50ParamTotal(t *testing.T) {
	w, err := ResNet50(1024)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, l := range w.Layers {
		total += float64(l.Count) * l.FwdBytes / bytesFP16
	}
	if math.Abs(total-ResNet50Params)/ResNet50Params > 0.01 {
		t.Errorf("ResNet-50 stage params total %.3g, want %.3g", total, ResNet50Params)
	}
}

func TestCommVolumeFactors(t *testing.T) {
	// A synthetic workload with one AR and one RS over DP=4:
	// volume = 2m·3/4 + m·3/4.
	w := &Workload{
		Name:      "synthetic",
		Strategy:  Strategy{TP: 1, DP: 4},
		Minibatch: 1,
		Layers: []Layer{{
			Name:  "l",
			Count: 1,
			DPComm: []Comm{
				{Op: collective.AllReduce, Bytes: 100, Scope: DPScope},
				{Op: collective.ReduceScatter, Bytes: 100, Scope: DPScope},
			},
		}},
	}
	want := 2*100*0.75 + 100*0.75
	if got := w.CommVolume(); !approx(got, want, 1e-12) {
		t.Errorf("CommVolume = %v, want %v", got, want)
	}
}

func TestCommVolumeCountsLayerMultiplicity(t *testing.T) {
	mk := func(count int) *Workload {
		return &Workload{
			Name: "synthetic", Strategy: Strategy{TP: 1, DP: 2}, Minibatch: 1,
			Layers: []Layer{{
				Name: "l", Count: count,
				DPComm: []Comm{{Op: collective.AllReduce, Bytes: 64, Scope: DPScope}},
			}},
		}
	}
	if got, want := mk(3).CommVolume(), 3*mk(1).CommVolume(); !approx(got, want, 1e-12) {
		t.Errorf("count=3 volume %v, want %v", got, want)
	}
}

func TestFig1ShapesMatchPaper(t *testing.T) {
	pts, err := Fig1Models()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig1Point{}
	for _, p := range pts {
		byName[p.Model] = p
	}
	// ResNet-50 DP gradient sync ≈ 2·2B·25.6M ≈ 102 MB (paper plots ~100 MB).
	if rn := byName["ResNet-50"]; rn.CommMB < 50 || rn.CommMB > 200 {
		t.Errorf("ResNet-50 comm = %.1f MB, want ≈ 100 MB", rn.CommMB)
	}
	// MSFT-1T lands in the TB decade (paper's top of the log axis).
	if ms := byName["MSFT-1T"]; ms.CommMB < 1e5 || ms.CommMB > 5e6 {
		t.Errorf("MSFT-1T comm = %.3g MB, want ~1e6 MB (TB scale)", ms.CommMB)
	}
	// Volumes grow by ~4 orders of magnitude from 2015 to 2021 and the
	// largest model dominates.
	if !(byName["MSFT-1T"].CommMB > byName["GPT-3"].CommMB) {
		t.Error("MSFT-1T should exceed GPT-3")
	}
	if !(byName["GPT-3"].CommMB > byName["ResNet-50"].CommMB*100) {
		t.Error("GPT-3 should exceed ResNet-50 by >100×")
	}
	// Sorted by year.
	for i := 1; i < len(pts); i++ {
		if pts[i].Year < pts[i-1].Year {
			t.Errorf("points not year-sorted: %v", pts)
		}
	}
}

func TestMSFT1TWithTP(t *testing.T) {
	for _, tp := range []int{8, 16, 32, 64, 128, 256} {
		w, err := MSFT1TWithTP(4096, tp)
		if err != nil {
			t.Fatalf("MSFT1TWithTP(%d): %v", tp, err)
		}
		if w.Strategy.TP != tp || w.Strategy.DP != 4096/tp {
			t.Errorf("TP=%d strategy = %v", tp, w.Strategy)
		}
		if !strings.Contains(w.Name, "HP-") {
			t.Errorf("name %q should carry the strategy", w.Name)
		}
	}
	if _, err := MSFT1TWithTP(4096, 3); err == nil {
		t.Error("non-dividing TP should error")
	}
}

// Larger TP shifts communication from DP gradients to TP activations; the
// total comm volume is strategy-dependent (the Fig. 21 tradeoff).
func TestTPDPVolumeTradeoff(t *testing.T) {
	vol := map[int]float64{}
	for _, tp := range []int{8, 32, 128} {
		w, err := MSFT1TWithTP(4096, tp)
		if err != nil {
			t.Fatal(err)
		}
		vol[tp] = w.CommVolume()
	}
	if vol[8] == vol[32] && vol[32] == vol[128] {
		t.Error("comm volume should vary with the strategy")
	}
}

func TestWorkloadValidateCatchesBadLayers(t *testing.T) {
	bad := []*Workload{
		{Name: "", Strategy: Strategy{TP: 1, DP: 1}, Minibatch: 1, Layers: []Layer{{Name: "l", Count: 1}}},
		{Name: "w", Strategy: Strategy{TP: 0, DP: 1}, Minibatch: 1, Layers: []Layer{{Name: "l", Count: 1}}},
		{Name: "w", Strategy: Strategy{TP: 1, DP: 1}, Minibatch: 0, Layers: []Layer{{Name: "l", Count: 1}}},
		{Name: "w", Strategy: Strategy{TP: 1, DP: 1}, Minibatch: 1},
		{Name: "w", Strategy: Strategy{TP: 1, DP: 1}, Minibatch: 1, Layers: []Layer{{Name: "l", Count: 0}}},
		{Name: "w", Strategy: Strategy{TP: 1, DP: 1}, Minibatch: 1, Layers: []Layer{{Name: "l", Count: 1, FwdFLOPs: -1}}},
		{Name: "w", Strategy: Strategy{TP: 1, DP: 1}, Minibatch: 1, Layers: []Layer{{Name: "l", Count: 1,
			DPComm: []Comm{{Op: collective.AllReduce, Bytes: -5, Scope: DPScope}}}}},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("workload %d unexpectedly valid", i)
		}
	}
}

func TestScopeSize(t *testing.T) {
	w := &Workload{Strategy: Strategy{TP: 8, DP: 4}}
	if w.ScopeSize(TPScope) != 8 || w.ScopeSize(DPScope) != 4 || w.ScopeSize(AllScope) != 32 {
		t.Errorf("scope sizes = %d %d %d", w.ScopeSize(TPScope), w.ScopeSize(DPScope), w.ScopeSize(AllScope))
	}
}

func TestTotalFLOPs(t *testing.T) {
	w, err := GPT3(4096)
	if err != nil {
		t.Fatal(err)
	}
	got := w.TotalFLOPs()
	// Forward+backward ≈ 6·params·tokens/TP per NPU (ignoring the
	// optimizer and embedding deltas).
	want := 6 * w.Params * 32 * 2048 / 16
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("TotalFLOPs = %.3g, want ≈ %.3g", got, want)
	}
}
