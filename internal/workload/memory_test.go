package workload

import (
	"math"
	"testing"
)

func TestTransformerFootprintMath(t *testing.T) {
	cfg := TransformerConfig{Name: "tiny", NumLayers: 4, Hidden: 100, SeqLen: 10}
	f, err := TransformerFootprint(cfg, Strategy{TP: 2, DP: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// params = 12·4·100² = 480000; local = params/TP = 240000.
	if want := 480000.0; f.WeightsBytes != want {
		t.Errorf("weights = %v, want %v", f.WeightsBytes, want)
	}
	if want := 2 * 240000.0 / 4; f.GradBytes != want {
		t.Errorf("grads = %v, want %v", f.GradBytes, want)
	}
	if want := 12 * 240000.0 / 4; f.OptimizerBytes != want {
		t.Errorf("optimizer = %v, want %v", f.OptimizerBytes, want)
	}
	// 4 layers held, 80 tokens, sharded TP=2: 4·80·100·2/2.
	if want := 32000.0; f.ActivationBytes != want {
		t.Errorf("activations = %v, want %v", f.ActivationBytes, want)
	}
	sum := f.WeightsBytes + f.GradBytes + f.OptimizerBytes + f.ActivationBytes
	if f.TotalBytes() != sum {
		t.Errorf("TotalBytes = %v, want %v", f.TotalBytes(), sum)
	}
	if !approx(f.TotalGB(), sum/1e9, 1e-12) {
		t.Errorf("TotalGB = %v", f.TotalGB())
	}
}

func TestTransformerFootprintPipelineSharding(t *testing.T) {
	cfg := TransformerConfig{Name: "tiny", NumLayers: 8, Hidden: 64, SeqLen: 16}
	flat, err := TransformerFootprint(cfg, Strategy{TP: 2, DP: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := TransformerFootprint(cfg, Strategy{TP: 2, PP: 4, DP: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// PP=4 quarters the held parameters and layers...
	if !approx(pp.WeightsBytes, flat.WeightsBytes/4, 1e-12) {
		t.Errorf("PP weights = %v, want %v", pp.WeightsBytes, flat.WeightsBytes/4)
	}
	if !approx(pp.ActivationBytes, flat.ActivationBytes/4, 1e-12) {
		t.Errorf("PP activations = %v, want %v", pp.ActivationBytes, flat.ActivationBytes/4)
	}
	// ...but the ZeRO shards span a 4× smaller DP group: /4 params × 4 DP.
	if !approx(pp.OptimizerBytes, flat.OptimizerBytes, 1e-12) {
		t.Errorf("PP optimizer = %v, want %v", pp.OptimizerBytes, flat.OptimizerBytes)
	}
}

// When PP does not divide the layer count, the footprint must account
// the fullest stage (ceil(L/PP) layers), not the average: a capacity
// check may never admit a strategy whose worst stage overflows.
func TestTransformerFootprintWorstStage(t *testing.T) {
	cfg := TransformerConfig{Name: "odd", NumLayers: 10, Hidden: 64, SeqLen: 16}
	f, err := TransformerFootprint(cfg, Strategy{TP: 1, PP: 4, DP: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fullest stage holds ceil(10/4) = 3 of 10 layers → 0.3·params, not
	// the average params/4.
	if want := cfg.Params() * 0.3 * bytesFP16; !approx(f.WeightsBytes, want, 1e-12) {
		t.Errorf("worst-stage weights = %v, want %v", f.WeightsBytes, want)
	}
}

func TestTransformerFootprintErrors(t *testing.T) {
	good := TransformerConfig{Name: "t", NumLayers: 2, Hidden: 8, SeqLen: 4}
	if _, err := TransformerFootprint(TransformerConfig{}, Strategy{TP: 1, DP: 1}, 1); err == nil {
		t.Error("degenerate config should error")
	}
	if _, err := TransformerFootprint(good, Strategy{TP: 0, DP: 1}, 1); err == nil {
		t.Error("bad strategy should error")
	}
	if _, err := TransformerFootprint(good, Strategy{TP: 1, DP: 1}, 0); err == nil {
		t.Error("minibatch 0 should error")
	}
}

func TestMemoryFootprintFits(t *testing.T) {
	f := MemoryFootprint{WeightsBytes: 60e9, OptimizerBytes: 20e9}
	if !f.Fits(0) || !f.Fits(-1) {
		t.Error("non-positive capacity must mean unlimited (the §VI-E CXL relaxation)")
	}
	if !f.Fits(80) {
		t.Error("80 GB footprint should fit exactly 80 GB")
	}
	if f.Fits(79) {
		t.Error("80 GB footprint must not fit 79 GB")
	}
}

// The paper's §VI-E memory argument: on 4096 NPUs with the global batch
// held fixed, MSFT-1T's default HP-(128, 32) fits an A100-80GB while
// low-TP strategies (which concentrate parameters per NPU) do not —
// that is why the default exists and why §VI-E must relax memory to
// explore the rest of the strategy space.
func TestMSFT1TMemoryFeasibilityPattern(t *testing.T) {
	const npus = 4096
	footprint := func(tp int) MemoryFootprint {
		t.Helper()
		w, err := MSFT1TWithTP(npus, tp)
		if err != nil {
			t.Fatal(err)
		}
		f, err := TransformerFootprint(MSFT1TConfig, w.Strategy, w.Minibatch)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if f := footprint(128); !f.Fits(DefaultNPUMemoryGB) {
		t.Errorf("default HP-(128, 32) needs %.1f GB, should fit %v GB", f.TotalGB(), DefaultNPUMemoryGB)
	}
	if f := footprint(8); f.Fits(DefaultNPUMemoryGB) {
		t.Errorf("HP-(8, 512) needs only %.1f GB; expected memory-infeasible", f.TotalGB())
	}
	// Footprint shrinks monotonically as TP spreads the parameters.
	prev := math.Inf(1)
	for _, tp := range []int{8, 32, 128} {
		gb := footprint(tp).TotalGB()
		if gb >= prev {
			t.Errorf("TP=%d footprint %.1f GB did not shrink (prev %.1f GB)", tp, gb, prev)
		}
		prev = gb
	}
}

func TestStrategyPPEdgeCases(t *testing.T) {
	// PP=0 is the "no pipelining" zero value: valid, treated as 1.
	s := Strategy{TP: 4, DP: 8}
	if err := s.Validate(); err != nil {
		t.Errorf("PP=0 strategy rejected: %v", err)
	}
	if s.PPOr1() != 1 || s.NPUs() != 32 {
		t.Errorf("PPOr1 = %d, NPUs = %d", s.PPOr1(), s.NPUs())
	}
	if (Strategy{TP: 4, PP: -1, DP: 8}).Validate() == nil {
		t.Error("PP=-1 should be rejected")
	}
	withPP := Strategy{TP: 4, PP: 2, DP: 8}
	if err := withPP.Validate(); err != nil {
		t.Errorf("PP=2 strategy rejected: %v", err)
	}
	if withPP.NPUs() != 64 {
		t.Errorf("PP=2 NPUs = %d, want 64", withPP.NPUs())
	}
	if got := withPP.String(); got != "HP-(4, 2, 8)" {
		t.Errorf("String = %q", got)
	}
}

func TestMSFT1TWithTPEdgeCases(t *testing.T) {
	// TP not dividing the NPU count fails loudly.
	if _, err := MSFT1TWithTP(4096, 24); err == nil {
		t.Error("TP=24 on 4096 NPUs should error")
	}
	// TP exceeding the NPU count cannot divide it either.
	if _, err := MSFT1TWithTP(128, 256); err == nil {
		t.Error("TP > NPUs should error")
	}
	// Zero NPUs leaves a degenerate DP=0 strategy behind.
	if _, err := MSFT1TWithTP(0, 1); err == nil {
		t.Error("0 NPUs should error")
	}
	// Fixed global batch: per-replica minibatch clamps to ≥ 1 when DP
	// outgrows the global batch (TP=1 on 256 NPUs → batch 64 over DP 256).
	w, err := MSFT1TWithTP(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Minibatch != 1 {
		t.Errorf("minibatch = %d, want clamp to 1", w.Minibatch)
	}
	// The un-clamped region scales minibatch ∝ TP at fixed global batch.
	a, err := MSFT1TWithTP(4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MSFT1TWithTP(4096, 128)
	if err != nil {
		t.Fatal(err)
	}
	if a.Minibatch*2 != b.Minibatch {
		t.Errorf("minibatch should double with TP: %d vs %d", a.Minibatch, b.Minibatch)
	}
}
