package workload

import "fmt"

// DefaultNPUMemoryGB is the per-NPU capacity of the A100-80GB the paper's
// compute model is calibrated to — the value to pass as a feasibility cap
// when no specific device is being modeled. It is never applied
// implicitly: an unset capacity means unlimited (the §VI-E relaxation).
const DefaultNPUMemoryGB = 80.0

// MemoryFootprint is the per-NPU training-memory breakdown of a workload
// under a parallelization strategy, in bytes. It follows the standard
// Megatron + ZeRO accounting the paper's §VI-E memory argument rests on:
// fp16 weights and gradients, fp32 Adam state (master weight + two
// moments), and checkpointed layer-boundary activations.
type MemoryFootprint struct {
	// WeightsBytes holds the fp16 model shard: 2 bytes per parameter held
	// locally (params / (TP·PP)).
	WeightsBytes float64 `json:"weights_bytes"`
	// GradBytes holds the fp16 gradient shard. ZeRO-2 partitions gradients
	// across the DP group, so this is 2·localParams/DP.
	GradBytes float64 `json:"grad_bytes"`
	// OptimizerBytes holds the sharded Adam state: fp32 master weight plus
	// two fp32 moments (12 bytes per parameter), ZeRO-partitioned DP-ways.
	OptimizerBytes float64 `json:"optimizer_bytes"`
	// ActivationBytes holds the checkpointed activations: one fp16
	// sequence-parallel layer-input tensor (minibatch·seq·hidden/TP) per
	// locally held layer.
	ActivationBytes float64 `json:"activation_bytes"`
}

// TotalBytes sums the footprint components.
func (f MemoryFootprint) TotalBytes() float64 {
	return f.WeightsBytes + f.GradBytes + f.OptimizerBytes + f.ActivationBytes
}

// TotalGB reports the footprint in GB (1e9 bytes, matching GB/s elsewhere).
func (f MemoryFootprint) TotalGB() float64 { return f.TotalBytes() / 1e9 }

// Fits reports whether the footprint fits a per-NPU capacity of capGB.
// capGB ≤ 0 means unlimited — the paper's §VI-E CXL/CPU-extended-memory
// relaxation, under which every strategy is admissible.
func (f MemoryFootprint) Fits(capGB float64) bool {
	if capGB <= 0 {
		return true
	}
	return f.TotalBytes() <= capGB*1e9
}

// TransformerFootprint models the per-NPU memory a Megatron + ZeRO-2
// transformer occupies under a strategy with the given per-replica
// minibatch:
//
//   - localParams = ceil(L/PP)/L · params/TP parameters per NPU — the
//     fullest pipeline stage's share, so a capacity check never admits a
//     strategy whose worst stage overflows (= params/(TP·PP) when PP
//     divides L);
//   - weights 2·localParams (fp16), gradients 2·localParams/DP and Adam
//     state 12·localParams/DP (both ZeRO-partitioned across DP);
//   - activations: ceil(L/PP) locally held layers, each checkpointing one
//     fp16 minibatch·seq·hidden tensor sharded TP-ways (sequence-parallel
//     activation checkpointing).
//
// The same strategy that shrinks communication therefore grows memory:
// low-TP strategies hold more parameters per NPU, which is exactly why the
// paper's default MSFT-1T configuration is HP-(128, 32) and why §VI-E must
// relax the memory constraint to explore the rest of the strategy space.
func TransformerFootprint(cfg TransformerConfig, s Strategy, minibatch int) (MemoryFootprint, error) {
	if err := cfg.Validate(); err != nil {
		return MemoryFootprint{}, err
	}
	if err := s.Validate(); err != nil {
		return MemoryFootprint{}, err
	}
	if minibatch < 1 {
		return MemoryFootprint{}, fmt.Errorf("workload: transformer %q minibatch %d must be ≥ 1", cfg.Name, minibatch)
	}
	tp, dp := float64(s.TP), float64(s.DP)
	layersHeld := (cfg.NumLayers + s.PPOr1() - 1) / s.PPOr1()
	local := cfg.Params() * float64(layersHeld) / float64(cfg.NumLayers) / tp
	tokens := float64(minibatch) * float64(cfg.SeqLen)
	return MemoryFootprint{
		WeightsBytes:    bytesFP16 * local,
		GradBytes:       bytesFP16 * local / dp,
		OptimizerBytes:  12 * local / dp,
		ActivationBytes: float64(layersHeld) * tokens * float64(cfg.Hidden) * bytesFP16 / tp,
	}, nil
}
