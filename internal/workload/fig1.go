package workload

import (
	"fmt"
	"sort"
)

// Fig1Point is one model of the paper's Fig. 1: per-NPU communication
// volume per training iteration at 1,024 NPUs (FP16).
type Fig1Point struct {
	Model  string
	Year   int
	Params float64
	// CommMB is the per-NPU communication volume in megabytes.
	CommMB float64
}

// dpOnlyCommMB returns the Fig. 1 volume for a pure data-parallel model:
// a ZeRO-2 gradient Reduce-Scatter plus weight All-Gather (together the
// volume of one All-Reduce), i.e. ≈ 2 · 2 bytes · params for large DP.
func dpOnlyCommMB(params float64, dp int) float64 {
	n := float64(dp)
	return 2 * bytesFP16 * params * (n - 1) / n / 1e6
}

// Fig1Models reproduces Fig. 1's model set: DP-only models (minibatch 32)
// from ResNet-50 (2015) through Turing-NLG (2020), plus GPT-3 and MSFT-1T
// under their Table II hybrid strategies, all at 1,024 NPUs.
func Fig1Models() ([]Fig1Point, error) {
	const npus = 1024
	// DP-only models: published parameter counts.
	dpModels := []struct {
		name   string
		year   int
		params float64
	}{
		{"ResNet-50", 2015, 25.6e6},
		{"GNMT", 2016, 278e6},
		{"ResNeXt", 2017, 83.6e6},
		{"SENet-154", 2017, 115e6},
		{"NasNet-A", 2018, 88.9e6},
		{"BERT-L", 2018, 340e6},
		{"Megatron", 2019, 8.3e9},
		{"Turing-NLG", 2020, 17e9},
	}
	out := make([]Fig1Point, 0, len(dpModels)+2)
	for _, m := range dpModels {
		out = append(out, Fig1Point{
			Model:  m.name,
			Year:   m.year,
			Params: m.params,
			CommMB: dpOnlyCommMB(m.params, npus),
		})
	}
	for _, build := range []struct {
		year int
		fn   func(int) (*Workload, error)
	}{
		{2020, GPT3},
		{2021, MSFT1T},
	} {
		w, err := build.fn(npus)
		if err != nil {
			return nil, fmt.Errorf("workload: fig1 %v", err)
		}
		out = append(out, Fig1Point{
			Model:  w.Name,
			Year:   build.year,
			Params: w.Params,
			CommMB: w.CommVolume() / 1e6,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Year != out[j].Year {
			return out[i].Year < out[j].Year
		}
		return out[i].CommMB < out[j].CommMB
	})
	return out, nil
}
