package workload

import (
	"math"
	"testing"

	"libra/internal/collective"
)

func TestTransformerPPStructure(t *testing.T) {
	cfg := TransformerConfig{Name: "pp-model", NumLayers: 32, Hidden: 2048, SeqLen: 1024, VocabSize: 1000}
	s := Strategy{TP: 4, PP: 4, DP: 8}
	w, err := TransformerPP(cfg, s, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if w.Strategy.NPUs() != 128 {
		t.Errorf("NPUs = %d, want 128", w.Strategy.NPUs())
	}
	var block, boundary *Layer
	for i := range w.Layers {
		switch w.Layers[i].Name {
		case "transformer-block":
			block = &w.Layers[i]
		case "pp-boundary":
			boundary = &w.Layers[i]
		}
	}
	if block == nil || boundary == nil {
		t.Fatalf("layers = %+v", w.Layers)
	}
	// Each stage holds L/PP blocks.
	if block.Count != 8 {
		t.Errorf("stage blocks = %d, want 8", block.Count)
	}
	// Boundary sends TP-sharded microbatch activations point-to-point.
	if len(boundary.FwdComm) != 1 || boundary.FwdComm[0].Op != collective.PointToPoint ||
		boundary.FwdComm[0].Scope != PPScope {
		t.Errorf("boundary fwd comm = %+v", boundary.FwdComm)
	}
	wantP2P := 16.0 * 1024 * 2048 * 2 / 4
	if math.Abs(boundary.FwdComm[0].Bytes-wantP2P) > 1 {
		t.Errorf("p2p bytes = %v, want %v", boundary.FwdComm[0].Bytes, wantP2P)
	}
}

func TestTransformerPPBubbleInflatesCompute(t *testing.T) {
	cfg := TransformerConfig{Name: "pp-model", NumLayers: 32, Hidden: 2048, SeqLen: 1024}
	noPP, err := Transformer(TransformerConfig{Name: "x", NumLayers: 8, Hidden: 2048, SeqLen: 1024},
		Strategy{TP: 4, DP: 8}, 16)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := TransformerPP(cfg, Strategy{TP: 4, PP: 4, DP: 8}, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Bubble factor (8+4-1)/8 = 1.375 on the stage's forward compute.
	want := noPP.Layers[0].FwdFLOPs * 1.375
	if math.Abs(pp.Layers[0].FwdFLOPs-want)/want > 1e-9 {
		t.Errorf("bubbled FwdFLOPs = %v, want %v", pp.Layers[0].FwdFLOPs, want)
	}
}

func TestTransformerPPDegenersatesToHP(t *testing.T) {
	cfg := TransformerConfig{Name: "m", NumLayers: 8, Hidden: 512, SeqLen: 128}
	a, err := TransformerPP(cfg, Strategy{TP: 2, PP: 0, DP: 4}, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Transformer(cfg, Strategy{TP: 2, DP: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalFLOPs() != b.TotalFLOPs() || a.CommVolume() != b.CommVolume() {
		t.Errorf("PP=0 should match the plain transformer")
	}
}

func TestTransformerPPValidation(t *testing.T) {
	cfg := TransformerConfig{Name: "m", NumLayers: 9, Hidden: 512, SeqLen: 128}
	if _, err := TransformerPP(cfg, Strategy{TP: 2, PP: 4, DP: 2}, 8, 4); err == nil {
		t.Error("9 layers over 4 stages should error")
	}
	cfg.NumLayers = 8
	if _, err := TransformerPP(cfg, Strategy{TP: 2, PP: 4, DP: 2}, 8, 3); err == nil {
		t.Error("minibatch 8 with 3 microbatches should error")
	}
	if _, err := TransformerPP(cfg, Strategy{TP: 2, PP: 4, DP: 2}, 8, 0); err == nil {
		t.Error("0 microbatches should error")
	}
}

func TestStrategyWithPP(t *testing.T) {
	s := Strategy{TP: 16, PP: 4, DP: 32}
	if s.NPUs() != 2048 {
		t.Errorf("NPUs = %d", s.NPUs())
	}
	if got := s.String(); got != "HP-(16, 4, 32)" {
		t.Errorf("String = %q", got)
	}
	if (Strategy{TP: 1, PP: -1, DP: 1}).Validate() == nil {
		t.Error("negative PP should be invalid")
	}
	w := &Workload{Strategy: s}
	if w.ScopeSize(PPScope) != 4 || w.ScopeSize(AllScope) != 2048 {
		t.Errorf("scope sizes: PP=%d All=%d", w.ScopeSize(PPScope), w.ScopeSize(AllScope))
	}
}

func TestPointToPointCommVolume(t *testing.T) {
	w := &Workload{
		Name: "p2p", Strategy: Strategy{TP: 1, PP: 4, DP: 1}, Minibatch: 1,
		Layers: []Layer{{
			Name: "b", Count: 1,
			FwdComm: []Comm{{Op: collective.PointToPoint, Bytes: 100, Scope: PPScope}},
		}},
	}
	// Average per-NPU send volume: m·(PP−1)/PP.
	if got, want := w.CommVolume(), 75.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("CommVolume = %v, want %v", got, want)
	}
}
