// Package timemodel estimates end-to-end training iteration time as a
// function of the per-dimension network bandwidth vector — the objective
// LIBRA optimizes (paper §IV-C).
//
// It first maps each workload's parallelization groups onto the physical
// network dimensions (tensor parallelism innermost, data parallelism
// outermost, splitting a dimension when the TP degree ends inside it), then
// prices every collective with the multi-rail analytical model and folds
// compute and communication together according to the training loop.
package timemodel

import (
	"fmt"

	"libra/internal/collective"
	"libra/internal/topology"
	"libra/internal/workload"
)

// MappingPolicy selects how parallelization groups are projected onto
// network dimensions.
type MappingPolicy int

const (
	// Actual splits dimensions exactly: a TP degree that ends inside a
	// dimension claims only its share, and DP gets the rest. This is how
	// the traffic really flows.
	Actual MappingPolicy = iota
	// IdealFullDims rounds the TP group up to whole dimensions — the
	// simplification the paper's optimizer makes, which causes the GPT-3 +
	// 4D-4K anomaly (LIBRA assigns Dim-2 bandwidth the real TP-16 traffic
	// cannot use, §VI-A). Use for optimization-side modeling only.
	IdealFullDims
)

// Mappings holds the per-scope collective mappings of one workload on one
// network.
type Mappings struct {
	TP  collective.Mapping
	PP  collective.Mapping
	DP  collective.Mapping
	All collective.Mapping
}

// ForScope returns the mapping for a communication scope.
func (m Mappings) ForScope(s workload.Scope) collective.Mapping {
	switch s {
	case workload.TPScope:
		return m.TP
	case workload.PPScope:
		return m.PP
	case workload.DPScope:
		return m.DP
	default:
		return m.All
	}
}

// dimCursor walks the network's dimensions innermost-first, handing out
// group factors to successive parallelization degrees and splitting a
// dimension when a degree ends inside it.
type dimCursor struct {
	sizes []int
	d     int // current dimension
	left  int // remaining size within the current dimension
}

// take carves a degree out of the remaining dimensions (Actual policy).
func (c *dimCursor) take(degree int, label string) ([]collective.Phase, error) {
	var phases []collective.Phase
	remaining := degree
	for remaining > 1 {
		if c.d >= len(c.sizes) {
			return nil, fmt.Errorf("timemodel: %s=%d exceeds the network", label, degree)
		}
		if c.left == 0 {
			c.left = c.sizes[c.d]
		}
		if remaining >= c.left {
			if remaining%c.left != 0 {
				return nil, fmt.Errorf("timemodel: %s=%d does not divide evenly across dim %d (residue %d over %d)",
					label, degree, c.d+1, remaining, c.left)
			}
			phases = append(phases, collective.Phase{Dim: c.d, Group: c.left})
			remaining /= c.left
			c.left = 0
			c.d++
			continue
		}
		if c.left%remaining != 0 {
			return nil, fmt.Errorf("timemodel: %s=%d leaves residue %d that does not divide dim %d's remaining %d",
				label, degree, remaining, c.d+1, c.left)
		}
		phases = append(phases, collective.Phase{Dim: c.d, Group: remaining})
		c.left /= remaining
		if c.left == 1 {
			c.left = 0
			c.d++
		}
		remaining = 1
	}
	return phases, nil
}

// takeIdeal rounds the degree up to whole dimensions (IdealFullDims).
func (c *dimCursor) takeIdeal(degree int) []collective.Phase {
	var phases []collective.Phase
	covered := 1
	for c.d < len(c.sizes) && covered < degree {
		phases = append(phases, collective.Phase{Dim: c.d, Group: c.sizes[c.d]})
		covered *= c.sizes[c.d]
		c.d++
	}
	return phases
}

// MapStrategy projects an HP-(TP[, PP], DP) strategy onto the network:
// TP occupies dimensions innermost-first, then PP, then DP outward. The
// strategy must occupy exactly the network's NPU count, and under the
// Actual policy every boundary must divide evenly (e.g. TP=24 cannot map
// onto RI(4)_FC(8): 24/4 = 6 does not divide 8).
func MapStrategy(net *topology.Network, s workload.Strategy, policy MappingPolicy) (Mappings, error) {
	if err := s.Validate(); err != nil {
		return Mappings{}, err
	}
	if s.NPUs() != net.NPUs() {
		return Mappings{}, fmt.Errorf("timemodel: strategy %v occupies %d NPUs but network %s has %d",
			s, s.NPUs(), net.Name(), net.NPUs())
	}
	cur := &dimCursor{sizes: net.Sizes()}

	var tp, pp, dp []collective.Phase
	var err error
	switch policy {
	case Actual:
		if tp, err = cur.take(s.TP, "TP"); err != nil {
			return Mappings{}, err
		}
		if pp, err = cur.take(s.PPOr1(), "PP"); err != nil {
			return Mappings{}, err
		}
		if dp, err = cur.take(s.DP, "DP"); err != nil {
			return Mappings{}, err
		}
	case IdealFullDims:
		tp = cur.takeIdeal(s.TP)
		pp = cur.takeIdeal(s.PPOr1())
		dp = cur.takeIdeal(s.DP)
	default:
		return Mappings{}, fmt.Errorf("timemodel: unknown mapping policy %d", policy)
	}

	m := Mappings{
		TP:  collective.Mapping{Phases: tp},
		PP:  collective.Mapping{Phases: pp},
		DP:  collective.Mapping{Phases: dp},
		All: collective.FullMapping(net),
	}
	for _, mm := range []collective.Mapping{m.TP, m.PP, m.DP, m.All} {
		if err := mm.Validate(net.NumDims()); err != nil {
			return Mappings{}, err
		}
	}
	return m, nil
}
