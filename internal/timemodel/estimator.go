package timemodel

import (
	"fmt"

	"libra/internal/collective"
	"libra/internal/compute"
	"libra/internal/topology"
	"libra/internal/workload"
)

// Loop selects the training loop (paper Fig. 5).
type Loop int

const (
	// NoOverlap runs every compute and communication stage exclusively
	// (Fig. 5b).
	NoOverlap Loop = iota
	// TPDPOverlap exposes TP compute but overlaps TP communication with
	// DP compute and DP communication (Fig. 5c): per-layer backward time
	// is TPComp + max(TPComm, DPComp + DPComm).
	TPDPOverlap
)

// Key returns the canonical spec/CLI spelling of the loop ("no-overlap",
// "tp-dp-overlap") — the strings core.ParseLoop accepts.
func (l Loop) Key() string {
	if l == TPDPOverlap {
		return "tp-dp-overlap"
	}
	return "no-overlap"
}

// String names the loop.
func (l Loop) String() string {
	switch l {
	case NoOverlap:
		return "No Overlap"
	case TPDPOverlap:
		return "TP-DP Overlap"
	default:
		return fmt.Sprintf("Loop(%d)", int(l))
	}
}

// Estimator evaluates iteration time for one network + bandwidth
// configuration. The zero value is unusable; fill every field (InNetwork
// may be nil for no switch offload).
type Estimator struct {
	Net     *topology.Network
	Compute compute.Model
	Loop    Loop
	Policy  MappingPolicy
	// InNetwork marks dimensions whose switches offload All-Reduce
	// reductions (in-network collectives, §IV-C). nil disables offload.
	InNetwork []bool
}

// Breakdown reports the six Fig. 5 stage totals plus derived quantities,
// all in seconds (traffic in bytes).
type Breakdown struct {
	FwdComp, FwdComm float64
	TPComp, TPComm   float64
	DPComp, DPComm   float64
	// Total is the end-to-end iteration time under the estimator's loop.
	Total float64
	// ComputeOnly is the iteration time with all communication free — the
	// "pure compute" floor of Fig. 10.
	ComputeOnly float64
	// ExposedComm = Total − ComputeOnly.
	ExposedComm float64
	// DimTraffic is the per-dimension bytes each NPU moves per iteration.
	DimTraffic []float64
	// DimBusy is the per-dimension seconds each NPU's port transfers.
	DimBusy []float64
	// CollectiveTime is the summed completion time of every collective
	// (the serialized communication window used for utilization).
	CollectiveTime float64
}

// AvgUtilization returns the average network bandwidth utilization during
// communication: the mean over dimensions of (busy time / communication
// window), the quantity Fig. 10's x-axis reports.
func (b Breakdown) AvgUtilization() float64 {
	if b.CollectiveTime <= 0 || len(b.DimBusy) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range b.DimBusy {
		sum += v
	}
	return sum / (float64(len(b.DimBusy)) * b.CollectiveTime)
}

// Iteration estimates one training iteration of w under bandwidth bw.
func (e *Estimator) Iteration(w *workload.Workload, bw topology.BWConfig) (Breakdown, error) {
	f, err := e.Prepare(w)
	if err != nil {
		return Breakdown{}, err
	}
	return f(bw)
}

// Prepare validates w and resolves its parallelization mapping once,
// returning a closure that prices design points with only per-point
// bandwidth validation left on the hot path. Sweeps that evaluate one
// workload across many bandwidth vectors should prepare once and call the
// closure per point.
func (e *Estimator) Prepare(w *workload.Workload) (func(bw topology.BWConfig) (Breakdown, error), error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	maps, err := MapStrategy(e.Net, w.Strategy, e.Policy)
	if err != nil {
		return nil, err
	}
	return func(bw topology.BWConfig) (Breakdown, error) {
		if err := bw.Validate(e.Net); err != nil {
			return Breakdown{}, err
		}
		return e.iterate(w, bw, maps), nil
	}, nil
}

// commCost prices one collective call, accumulating per-dim traffic/busy
// when the breakdown tracks them (nil DimTraffic marks the lean pricing
// path, which only needs stage totals). tbuf is per-call traffic scratch.
func (e *Estimator) commCost(c workload.Comm, maps Mappings, bw topology.BWConfig, b *Breakdown, tbuf []float64) float64 {
	mapping := maps.ForScope(c.Scope)
	ndims := e.Net.NumDims()
	var traffic []float64
	if e.InNetwork != nil {
		traffic = collective.InNetworkTrafficInto(tbuf, c.Op, c.Bytes, mapping, ndims, e.InNetwork)
	} else {
		traffic = collective.TrafficInto(tbuf, c.Op, c.Bytes, mapping, ndims)
	}
	track := b.DimTraffic != nil
	worst := 0.0
	for d, v := range traffic {
		if v == 0 {
			continue
		}
		t := v / (bw[d] * 1e9)
		if track {
			b.DimTraffic[d] += v
			b.DimBusy[d] += t
		}
		if t > worst {
			worst = t
		}
	}
	b.CollectiveTime += worst
	return worst
}

func (e *Estimator) iterate(w *workload.Workload, bw topology.BWConfig, maps Mappings) Breakdown {
	return e.iterateTracked(w, bw, maps, true)
}

// iterateTracked prices one iteration. track=false is the optimizer's
// lean path: per-dimension traffic/busy accumulators are skipped and all
// scratch stays in fixed-size local buffers, so an evaluation allocates
// nothing — the objective closures stay pure and safe for the solver's
// concurrent multistart. Stage totals are computed by the same operations
// in the same order either way.
func (e *Estimator) iterateTracked(w *workload.Workload, bw topology.BWConfig, maps Mappings, track bool) Breakdown {
	var b Breakdown
	ndims := e.Net.NumDims()
	var preTraffic, preBusy []float64
	if track {
		b.DimTraffic = make([]float64, ndims)
		b.DimBusy = make([]float64, ndims)
		preTraffic = make([]float64, ndims)
		preBusy = make([]float64, ndims)
	}
	// Per-collective traffic scratch; LIBRA fabrics have ≤ 8 dimensions,
	// so the backing array normally lives on this frame.
	var tarr [8]float64
	tbuf := tarr[:]
	if ndims > len(tarr) {
		tbuf = make([]float64, ndims)
	}
	sumComm := func(cs []workload.Comm) float64 {
		t := 0.0
		for _, c := range cs {
			t += e.commCost(c, maps, bw, &b, tbuf)
		}
		return t
	}
	for _, l := range w.Layers {
		n := float64(l.Count)
		fwdComp := e.Compute.Time(l.FwdFLOPs, l.FwdBytes)
		tpComp := e.Compute.Time(l.TPFLOPs, l.TPBytes)
		dpComp := e.Compute.Time(l.DPFLOPs, l.DPBytes)
		// Communication is identical across the Count copies; price one
		// layer and scale. Scale the shared accumulators afterwards.
		if track {
			copy(preTraffic, b.DimTraffic)
			copy(preBusy, b.DimBusy)
		}
		preColl := b.CollectiveTime
		fwdComm := sumComm(l.FwdComm)
		tpComm := sumComm(l.TPComm)
		dpComm := sumComm(l.DPComm)
		for d := range b.DimTraffic {
			b.DimTraffic[d] = preTraffic[d] + n*(b.DimTraffic[d]-preTraffic[d])
			b.DimBusy[d] = preBusy[d] + n*(b.DimBusy[d]-preBusy[d])
		}
		b.CollectiveTime = preColl + n*(b.CollectiveTime-preColl)

		b.FwdComp += n * fwdComp
		b.FwdComm += n * fwdComm
		b.TPComp += n * tpComp
		b.TPComm += n * tpComm
		b.DPComp += n * dpComp
		b.DPComm += n * dpComm

		b.ComputeOnly += n * (fwdComp + tpComp + dpComp)
		switch e.Loop {
		case TPDPOverlap:
			bwd := tpComp + maxf(tpComm, dpComp+dpComm)
			b.Total += n * (fwdComp + fwdComm + bwd)
		default: // NoOverlap
			b.Total += n * (fwdComp + fwdComm + tpComp + tpComm + dpComp + dpComm)
		}
	}
	b.ExposedComm = b.Total - b.ComputeOnly
	return b
}

// TimeFunc returns a closure evaluating iteration time as a pure function
// of the bandwidth vector — the objective handed to the optimizer. The
// workload mapping is resolved once; the closure never fails (invalid
// bandwidths yield +Inf).
func (e *Estimator) TimeFunc(w *workload.Workload) (func(bw topology.BWConfig) float64, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	maps, err := MapStrategy(e.Net, w.Strategy, e.Policy)
	if err != nil {
		return nil, err
	}
	return func(bw topology.BWConfig) float64 {
		if err := bw.Validate(e.Net); err != nil {
			return inf
		}
		b := e.iterateTracked(w, bw, maps, false)
		return b.Total
	}, nil
}

const inf = 1e308

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
