package timemodel

import (
	"math"
	"testing"
	"testing/quick"

	"libra/internal/collective"
	"libra/internal/compute"
	"libra/internal/topology"
	"libra/internal/workload"
)

func approx(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestMapStrategyExactDims(t *testing.T) {
	net := topology.FourD4K() // RI(4)_FC(8)_RI(4)_SW(32)
	m, err := MapStrategy(net, workload.Strategy{TP: 128, DP: 32}, Actual)
	if err != nil {
		t.Fatal(err)
	}
	wantTP := []collective.Phase{{Dim: 0, Group: 4}, {Dim: 1, Group: 8}, {Dim: 2, Group: 4}}
	if len(m.TP.Phases) != 3 {
		t.Fatalf("TP phases = %+v", m.TP.Phases)
	}
	for i, p := range m.TP.Phases {
		if p != wantTP[i] {
			t.Errorf("TP phase %d = %+v, want %+v", i, p, wantTP[i])
		}
	}
	if len(m.DP.Phases) != 1 || m.DP.Phases[0] != (collective.Phase{Dim: 3, Group: 32}) {
		t.Errorf("DP phases = %+v", m.DP.Phases)
	}
	if m.All.Size() != 4096 {
		t.Errorf("All size = %d", m.All.Size())
	}
}

// GPT-3's TP=16 ends inside FC(8): TP takes (4, 4), DP takes (2, 4, 32).
func TestMapStrategySplitDim(t *testing.T) {
	net := topology.FourD4K()
	m, err := MapStrategy(net, workload.Strategy{TP: 16, DP: 256}, Actual)
	if err != nil {
		t.Fatal(err)
	}
	wantTP := []collective.Phase{{Dim: 0, Group: 4}, {Dim: 1, Group: 4}}
	wantDP := []collective.Phase{{Dim: 1, Group: 2}, {Dim: 2, Group: 4}, {Dim: 3, Group: 32}}
	if len(m.TP.Phases) != len(wantTP) {
		t.Fatalf("TP phases = %+v", m.TP.Phases)
	}
	for i := range wantTP {
		if m.TP.Phases[i] != wantTP[i] {
			t.Errorf("TP phase %d = %+v, want %+v", i, m.TP.Phases[i], wantTP[i])
		}
	}
	if len(m.DP.Phases) != len(wantDP) {
		t.Fatalf("DP phases = %+v", m.DP.Phases)
	}
	for i := range wantDP {
		if m.DP.Phases[i] != wantDP[i] {
			t.Errorf("DP phase %d = %+v, want %+v", i, m.DP.Phases[i], wantDP[i])
		}
	}
	if m.TP.Size()*m.DP.Size() != 4096 {
		t.Errorf("TP×DP = %d", m.TP.Size()*m.DP.Size())
	}
}

func TestMapStrategyIdealFullDims(t *testing.T) {
	net := topology.FourD4K()
	m, err := MapStrategy(net, workload.Strategy{TP: 16, DP: 256}, IdealFullDims)
	if err != nil {
		t.Fatal(err)
	}
	// Ideal policy rounds TP=16 up to RI(4)×FC(8) = 32.
	if len(m.TP.Phases) != 2 || m.TP.Phases[1].Group != 8 {
		t.Errorf("ideal TP phases = %+v", m.TP.Phases)
	}
	if len(m.DP.Phases) != 2 || m.DP.Phases[0].Dim != 2 {
		t.Errorf("ideal DP phases = %+v", m.DP.Phases)
	}
}

func TestMapStrategyPureDP(t *testing.T) {
	net := topology.ThreeD4K()
	m, err := MapStrategy(net, workload.Strategy{TP: 1, DP: 4096}, Actual)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TP.Phases) != 0 {
		t.Errorf("TP phases = %+v, want empty", m.TP.Phases)
	}
	if m.DP.Size() != 4096 {
		t.Errorf("DP size = %d", m.DP.Size())
	}
}

func TestMapStrategyErrors(t *testing.T) {
	net := topology.FourD4K()
	cases := []workload.Strategy{
		{TP: 24, DP: 4096 / 24}, // wrong NPU count (not integral anyway)
		{TP: 3, DP: 1365},       // 3 does not divide 4
		{TP: 4096 * 2, DP: 1},   // exceeds network
		{TP: 12, DP: 4096 / 12}, // wrong NPU total
	}
	for _, s := range cases {
		if _, err := MapStrategy(net, s, Actual); err == nil {
			t.Errorf("strategy %v unexpectedly mapped", s)
		}
	}
	// TP=24 with the right total still fails divisibility mid-dim.
	net2 := topology.MustParse("RI(4)_FC(8)_SW(3)")
	if _, err := MapStrategy(net2, workload.Strategy{TP: 24, DP: 4}, Actual); err == nil {
		t.Error("TP=24 on RI(4)_FC(8) should fail (6 does not divide 8)")
	}
}

func newEstimator(net *topology.Network, loop Loop) *Estimator {
	return &Estimator{Net: net, Compute: compute.A100(), Loop: loop, Policy: Actual}
}

func synthetic(tp, dp int) *workload.Workload {
	return &workload.Workload{
		Name:      "synthetic",
		Params:    1e9,
		Strategy:  workload.Strategy{TP: tp, DP: dp},
		Minibatch: 1,
		Layers: []workload.Layer{{
			Name:     "l",
			Count:    2,
			FwdFLOPs: 234e12 * 0.010, // 10 ms at A100 rate
			TPFLOPs:  234e12 * 0.020,
			DPFLOPs:  0,
			FwdComm:  []workload.Comm{{Op: collective.AllReduce, Bytes: 1e9, Scope: workload.TPScope}},
			TPComm:   []workload.Comm{{Op: collective.AllReduce, Bytes: 1e9, Scope: workload.TPScope}},
			DPComm:   []workload.Comm{{Op: collective.AllReduce, Bytes: 2e9, Scope: workload.DPScope}},
		}},
	}
}

func TestIterationNoOverlapAddsEverything(t *testing.T) {
	net := topology.MustParse("RI(4)_SW(8)")
	e := newEstimator(net, NoOverlap)
	w := synthetic(4, 8)
	bw := topology.BWConfig{100, 100}
	b, err := e.Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	want := b.FwdComp + b.FwdComm + b.TPComp + b.TPComm + b.DPComp + b.DPComm
	if !approx(b.Total, want, 1e-12) {
		t.Errorf("NoOverlap total = %v, want sum of stages %v", b.Total, want)
	}
	// Two layers at 10+20 ms compute each.
	if !approx(b.ComputeOnly, 0.060, 1e-9) {
		t.Errorf("ComputeOnly = %v, want 60 ms", b.ComputeOnly)
	}
	if !approx(b.ExposedComm, b.Total-b.ComputeOnly, 1e-12) {
		t.Errorf("ExposedComm = %v", b.ExposedComm)
	}
}

func TestIterationTPDPOverlap(t *testing.T) {
	net := topology.MustParse("RI(4)_SW(8)")
	w := synthetic(4, 8)
	bw := topology.BWConfig{100, 100}
	no, err := newEstimator(net, NoOverlap).Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := newEstimator(net, TPDPOverlap).Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	if !(ov.Total < no.Total) {
		t.Errorf("overlap %v should beat no-overlap %v", ov.Total, no.Total)
	}
	// Per layer: fwd (comp+comm) + TPComp + max(TPComm, DPComp+DPComm).
	perLayerFwd := no.FwdComp/2 + no.FwdComm/2
	bwd := no.TPComp/2 + math.Max(no.TPComm/2, no.DPComp/2+no.DPComm/2)
	if !approx(ov.Total, 2*(perLayerFwd+bwd), 1e-9) {
		t.Errorf("overlap total = %v, want %v", ov.Total, 2*(perLayerFwd+bwd))
	}
}

func TestIterationTimeDecreasesWithBW(t *testing.T) {
	net := topology.MustParse("RI(4)_SW(8)")
	e := newEstimator(net, NoOverlap)
	w := synthetic(4, 8)
	t1, err := e.Iteration(w, topology.BWConfig{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e.Iteration(w, topology.BWConfig{500, 500})
	if err != nil {
		t.Fatal(err)
	}
	if !(t2.Total < t1.Total) {
		t.Errorf("10× BW should reduce time: %v vs %v", t2.Total, t1.Total)
	}
	if !(t2.Total >= t1.Total-t1.ExposedComm) {
		t.Errorf("time cannot beat the compute floor")
	}
}

func TestDimTrafficAndBusyConsistent(t *testing.T) {
	net := topology.MustParse("RI(4)_SW(8)")
	e := newEstimator(net, NoOverlap)
	w := synthetic(4, 8)
	bw := topology.BWConfig{100, 25}
	b, err := e.Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	for d := range b.DimBusy {
		want := b.DimTraffic[d] / (bw[d] * 1e9)
		if !approx(b.DimBusy[d], want, 1e-9) {
			t.Errorf("dim %d busy %v, want traffic/bw %v", d, b.DimBusy[d], want)
		}
	}
	// TP AR (1e9 ×2 calls ×2 layers) on dim 0: 2·m·3/4 each.
	wantTP := 2.0 * 2 * (2 * 1e9 * 3 / 4)
	if !approx(b.DimTraffic[0], wantTP, 1e-9) {
		t.Errorf("dim0 traffic = %v, want %v", b.DimTraffic[0], wantTP)
	}
	if b.AvgUtilization() <= 0 || b.AvgUtilization() > 1 {
		t.Errorf("utilization = %v out of (0,1]", b.AvgUtilization())
	}
}

func TestUtilizationIsPerfectWhenBalanced(t *testing.T) {
	// One collective over both dims with BW proportional to traffic: every
	// dim is busy the whole window → utilization 1.
	net := topology.MustParse("RI(4)_SW(8)")
	w := &workload.Workload{
		Name: "ar-only", Strategy: workload.Strategy{TP: 32, DP: 1}, Minibatch: 1,
		Layers: []workload.Layer{{
			Name: "l", Count: 1,
			FwdComm: []workload.Comm{{Op: collective.AllReduce, Bytes: 1e9, Scope: workload.TPScope}},
		}},
	}
	e := newEstimator(net, NoOverlap)
	tr := collective.Traffic(collective.AllReduce, 1e9, collective.Mapping{
		Phases: []collective.Phase{{Dim: 0, Group: 4}, {Dim: 1, Group: 8}}}, 2)
	bw := topology.BWConfig{tr[0] / 1e9, tr[1] / 1e9}
	b, err := e.Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(b.AvgUtilization(), 1.0, 1e-9) {
		t.Errorf("balanced utilization = %v, want 1", b.AvgUtilization())
	}
}

func TestTimeFuncMatchesIteration(t *testing.T) {
	net := topology.FourD4K()
	e := newEstimator(net, NoOverlap)
	w, err := workload.MSFT1T(4096)
	if err != nil {
		t.Fatal(err)
	}
	f, err := e.TimeFunc(w)
	if err != nil {
		t.Fatal(err)
	}
	bw := topology.BWConfig{100, 80, 60, 60}
	b, err := e.Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(f(bw), b.Total, 1e-12) {
		t.Errorf("TimeFunc = %v, Iteration = %v", f(bw), b.Total)
	}
	if got := f(topology.BWConfig{1}); !math.IsInf(got, 1) && got < 1e300 {
		t.Errorf("invalid bw should price to +inf-ish, got %v", got)
	}
}

func TestInNetworkOffloadSpeedsUpAllReduce(t *testing.T) {
	net := topology.MustParse("RI(4)_SW(8)")
	w := synthetic(4, 8)
	bw := topology.BWConfig{100, 100}
	plain := newEstimator(net, NoOverlap)
	off := newEstimator(net, NoOverlap)
	off.InNetwork = []bool{false, true}
	bp, err := plain.Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := off.Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	if !(bo.DPComm < bp.DPComm) {
		t.Errorf("offloaded DP comm %v should beat %v", bo.DPComm, bp.DPComm)
	}
}

// The GPT-3 anomaly (§VI-A): an Ideal-policy model prices TP over the full
// FC(8) while the Actual traffic only uses groups of 4 — the two must
// disagree on 4D-4K to reproduce the paper's observation.
func TestIdealVsActualDivergeForGPT3(t *testing.T) {
	net := topology.FourD4K()
	w, err := workload.GPT3(4096)
	if err != nil {
		t.Fatal(err)
	}
	bw := topology.EqualBW(400, 4)
	actual := newEstimator(net, NoOverlap)
	ideal := newEstimator(net, NoOverlap)
	ideal.Policy = IdealFullDims
	ba, err := actual.Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	bi, err := ideal.Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	if approx(ba.Total, bi.Total, 1e-9) {
		t.Errorf("ideal and actual policies agree (%v); expected divergence for TP=16 on 4D-4K", ba.Total)
	}
}

// Property: iteration time is monotone non-increasing in every dimension's
// bandwidth.
func TestQuickMonotoneInBW(t *testing.T) {
	net := topology.MustParse("RI(4)_SW(8)")
	e := newEstimator(net, NoOverlap)
	w := synthetic(4, 8)
	f, err := e.TimeFunc(w)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b uint8, dim bool) bool {
		b1 := topology.BWConfig{float64(a%200) + 1, float64(b%200) + 1}
		b2 := b1.Clone()
		if dim {
			b2[0] *= 2
		} else {
			b2[1] *= 2
		}
		return f(b2) <= f(b1)+1e-15
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the analytical objective is convex along random line segments
// in BW space (PerfOpt's convexity, which the optimizer relies on).
func TestQuickConvexAlongSegments(t *testing.T) {
	net := topology.MustParse("RI(4)_SW(8)")
	e := newEstimator(net, NoOverlap)
	w := synthetic(4, 8)
	f, err := e.TimeFunc(w)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a1, a2, b1, b2 uint8) bool {
		x := topology.BWConfig{float64(a1) + 1, float64(a2) + 1}
		y := topology.BWConfig{float64(b1) + 1, float64(b2) + 1}
		mid := topology.BWConfig{(x[0] + y[0]) / 2, (x[1] + y[1]) / 2}
		return f(mid) <= (f(x)+f(y))/2+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Pipeline parallelism maps between TP (innermost) and DP (outermost).
func TestMapStrategyWithPP(t *testing.T) {
	net := topology.FourD4K() // RI(4)_FC(8)_RI(4)_SW(32)
	m, err := MapStrategy(net, workload.Strategy{TP: 32, PP: 4, DP: 32}, Actual)
	if err != nil {
		t.Fatal(err)
	}
	// TP = 4×8, PP = RI(4), DP = SW(32).
	if m.TP.Size() != 32 || m.PP.Size() != 4 || m.DP.Size() != 32 {
		t.Errorf("sizes TP=%d PP=%d DP=%d", m.TP.Size(), m.PP.Size(), m.DP.Size())
	}
	if len(m.PP.Phases) != 1 || m.PP.Phases[0].Dim != 2 {
		t.Errorf("PP phases = %+v, want dim 3", m.PP.Phases)
	}
}

// PP splitting a dimension: TP=8 on RI(4)_FC(8): TP takes (4,2); PP=2
// takes the next factor of FC(8); DP gets the rest.
func TestMapStrategyPPSplitsDim(t *testing.T) {
	net := topology.MustParse("RI(4)_FC(8)_SW(4)")
	m, err := MapStrategy(net, workload.Strategy{TP: 8, PP: 2, DP: 8}, Actual)
	if err != nil {
		t.Fatal(err)
	}
	if m.TP.Size() != 8 || m.PP.Size() != 2 || m.DP.Size() != 8 {
		t.Fatalf("sizes TP=%d PP=%d DP=%d", m.TP.Size(), m.PP.Size(), m.DP.Size())
	}
	if len(m.PP.Phases) != 1 || m.PP.Phases[0].Dim != 1 || m.PP.Phases[0].Group != 2 {
		t.Errorf("PP phases = %+v", m.PP.Phases)
	}
	wantDP := []collective.Phase{{Dim: 1, Group: 2}, {Dim: 2, Group: 4}}
	if len(m.DP.Phases) != 2 || m.DP.Phases[0] != wantDP[0] || m.DP.Phases[1] != wantDP[1] {
		t.Errorf("DP phases = %+v, want %+v", m.DP.Phases, wantDP)
	}
}

// A pipelined iteration prices the stage-boundary point-to-point traffic
// on the dimension where PP lives.
func TestIterationWithPipelineParallelism(t *testing.T) {
	net := topology.MustParse("RI(4)_FC(4)_SW(8)")
	cfg := workload.TransformerConfig{Name: "pp", NumLayers: 16, Hidden: 2048, SeqLen: 512}
	w, err := workload.TransformerPP(cfg, workload.Strategy{TP: 4, PP: 4, DP: 8}, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := newEstimator(net, NoOverlap)
	bw := topology.BWConfig{100, 100, 100}
	b, err := e.Iteration(w, bw)
	if err != nil {
		t.Fatal(err)
	}
	if b.DimTraffic[1] == 0 {
		t.Error("PP dim carries no traffic")
	}
	// Point-to-point volume per stage: fwd + bwd boundary messages.
	wantP2P := 2 * 16.0 * 512 * 2048 * 2 / 4
	gotP2P := b.DimTraffic[1]
	if gotP2P < wantP2P*(1-1e-9) {
		t.Errorf("PP dim traffic %v, want ≥ %v", gotP2P, wantP2P)
	}
	// Starving the PP dimension must slow the iteration.
	slow, err := e.Iteration(w, topology.BWConfig{100, 0.5, 100})
	if err != nil {
		t.Fatal(err)
	}
	if !(slow.Total > b.Total) {
		t.Errorf("starved PP dim should hurt: %v vs %v", slow.Total, b.Total)
	}
}

// LIBRA optimization works end-to-end on a pipelined workload: the PP
// point-to-point traffic is tiny next to TP collectives, so PerfOpt
// still wins by rebalancing toward the TP dims.
func TestPointToPointCollectiveModel(t *testing.T) {
	mp := collective.Mapping{Phases: []collective.Phase{{Dim: 1, Group: 4}}}
	tr := collective.Traffic(collective.PointToPoint, 1e6, mp, 3)
	if tr[0] != 0 || tr[1] != 1e6 || tr[2] != 0 {
		t.Errorf("P2P traffic = %v, want 1e6 on dim 2 only", tr)
	}
	bw := topology.BWConfig{10, 10, 10}
	if got := collective.Time(collective.PointToPoint, 1e6, mp, bw); !approx(got, 1e-4, 1e-12) {
		t.Errorf("P2P time = %v, want 1e-4", got)
	}
	ss := collective.Stages(collective.PointToPoint, mp)
	if len(ss) != 1 || ss[0].Op != collective.PointToPoint {
		t.Errorf("P2P stages = %+v", ss)
	}
}
