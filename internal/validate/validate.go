// Package validate cross-checks LIBRA's analytical time model against its
// event-driven simulators — the paper's §V validation methodology (the
// ~5%-mean-error comparison against ASTRA-sim) as a regression-gated
// subsystem instead of a one-off claim.
//
// A conformance run enumerates a scenario matrix (workload presets ×
// topology presets × training loops, plus raw collective patterns ×
// topologies × simulator paths), prices every scenario with both the
// closed-form estimator (internal/timemodel, collective.Time) and the
// event-driven simulators (internal/sim's chunk-pipeline and transfer-DAG
// backends), and reports per-scenario and aggregate divergence: relative
// error on total time and on per-dimension busy time, with tolerance
// verdicts and per-scenario skip reasons where a simulator cannot model
// the configuration (in-network reduction offload, transfer-DAG scale
// caps, strategies that do not map onto a topology).
//
// Scenarios execute concurrently through a Runner — typically
// *core.Engine via its generic Do API, which bounds workers, deduplicates
// identical scenarios in flight, and memoizes outcomes in the LRU cache —
// so repeated validation runs (CI on every push) are nearly free.
package validate

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"libra/internal/collective"
	"libra/internal/compute"
	"libra/internal/core"
	"libra/internal/sim"
	"libra/internal/timemodel"
	"libra/internal/topology"
	"libra/internal/workload"
)

// Runner executes cached scenario computations; *core.Engine satisfies
// it. Implementations must be safe for concurrent use — Compute issues
// every scenario at once and bounds nothing itself.
type Runner interface {
	Do(ctx context.Context, key string, compute func(context.Context) (any, error)) (any, bool, error)
}

// CodecRunner is the optional persistence-aware Runner surface:
// *core.Engine implements it, letting validate outcomes spill to the
// engine's disk tier (under the "validate" TTL kind) and survive
// restarts. Runners without it stay memory-only.
type CodecRunner interface {
	DoCodec(ctx context.Context, key string, codec core.Codec, compute func(context.Context) (any, error)) (any, bool, error)
}

// outcomeCodec persists scenario outcomes through the disk tier.
var outcomeCodec = core.JSONCodec[outcome]()

// Scenario paths: which simulator backend answered the scenario.
const (
	// PathPipeline is the chunk-pipeline simulator (symmetric per-NPU
	// ports; the backend that scales to thousands of NPUs).
	PathPipeline = "pipeline"
	// PathTransferDAG is the NPU-level transfer-graph simulator.
	PathTransferDAG = "transfer-dag"
)

// Scenario kinds.
const (
	// KindCollective compares one raw collective's closed-form bound
	// against a simulator backend.
	KindCollective = "collective"
	// KindIteration compares a full training iteration (estimator vs
	// chunk-pipeline simulation of every collective in the loop).
	KindIteration = "iteration"
)

// Scenario is one evaluated (or skipped) cell of the conformance matrix.
type Scenario struct {
	// ID is the stable "kind/topology/subject[/loop|/path]" handle used
	// in baselines and cache keys.
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Topology is the axis spelling; NPUs the resolved system size.
	Topology string `json:"topology"`
	NPUs     int    `json:"npus,omitempty"`
	// Workload and Loop identify iteration scenarios; Collective and
	// Path identify raw collective scenarios.
	Workload   string `json:"workload,omitempty"`
	Loop       string `json:"loop,omitempty"`
	Collective string `json:"collective,omitempty"`
	Path       string `json:"path"`
	// AnalyticalS and SimulatedS are the two models' answers in seconds.
	AnalyticalS float64 `json:"analytical_s,omitempty"`
	SimulatedS  float64 `json:"simulated_s,omitempty"`
	// RelErr is (simulated − analytical) / analytical. The chunk
	// pipeline can never beat the analytical bound, so it is normally a
	// small positive number (scheduling bubbles, Fig. 9c).
	RelErr float64 `json:"rel_err"`
	// DimBusyMaxRelErr is the worst per-dimension |relative error| of
	// busy time — near zero whenever both models price traffic
	// identically.
	DimBusyMaxRelErr float64 `json:"dim_busy_max_rel_err"`
	// Within is the tolerance verdict: both |RelErr| and
	// DimBusyMaxRelErr within the spec tolerance.
	Within bool `json:"within"`
	// Skipped scenarios carry the reason the comparison cannot run.
	Skipped bool   `json:"skipped,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// Cached reports a Runner cache hit.
	Cached bool   `json:"cached,omitempty"`
	Err    error  `json:"-"`
	Error  string `json:"error,omitempty"`
}

// Report is a computed conformance matrix.
type Report struct {
	// Tolerance is the gate every evaluated scenario was checked against.
	Tolerance float64 `json:"tolerance"`
	// Scenarios lists every cell in matrix order (collective scenarios
	// first, then iterations), skips and failures in place.
	Scenarios []Scenario `json:"scenarios"`
	// Evaluated/Skipped/Failed partition the scenario list.
	Evaluated int `json:"evaluated"`
	Skipped   int `json:"skipped"`
	Failed    int `json:"failed,omitempty"`
	// MeanAbsRelErr and MaxAbsRelErr aggregate |RelErr| over evaluated
	// scenarios; WorstID names the arg-max.
	MeanAbsRelErr float64 `json:"mean_abs_rel_err"`
	MaxAbsRelErr  float64 `json:"max_abs_rel_err"`
	WorstID       string  `json:"worst_id,omitempty"`
	// Pass is the gate: every evaluated scenario within tolerance, the
	// aggregate mean within tolerance, and no scenario failed.
	Pass bool `json:"pass"`
	// Solves counts freshly computed scenarios; CacheHits counts
	// scenarios served from the Runner's cache.
	Solves    int     `json:"solves"`
	CacheHits int     `json:"cache_hits"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// outcome is the cached payload of one scenario computation. Values are
// immutable once computed — the Runner shares them across callers.
// Fields are exported (with stable JSON tags) so outcomeCodec can
// persist them across restarts.
type outcome struct {
	Analytical  float64 `json:"analytical"`
	Simulated   float64 `json:"simulated"`
	RelErr      float64 `json:"rel_err"`
	DimBusyRelE float64 `json:"dim_busy_rel_err"`
}

// measure compares an analytical (total, per-dim busy) answer against a
// simulated one.
func measure(analytical, simulated float64, anaBusy, simBusy []float64) (outcome, error) {
	o := outcome{Analytical: analytical, Simulated: simulated}
	if !(analytical > 0) || math.IsInf(simulated, 0) || math.IsNaN(simulated) {
		return outcome{}, fmt.Errorf("validate: degenerate scenario (analytical %v s, simulated %v s)", analytical, simulated)
	}
	o.RelErr = (simulated - analytical) / analytical
	scale := 0.0
	for _, b := range anaBusy {
		if b > scale {
			scale = b
		}
	}
	for d, ana := range anaBusy {
		var simB float64
		if d < len(simBusy) {
			simB = simBusy[d]
		}
		denom := ana
		if denom == 0 {
			// A dimension the analytical model says is idle: measure any
			// simulated activity against the busiest dimension's scale.
			denom = scale
		}
		if denom == 0 {
			continue
		}
		if e := math.Abs(simB-ana) / denom; e > o.DimBusyRelE {
			o.DimBusyRelE = e
		}
	}
	return o, nil
}

// job is one runnable scenario: the output shell plus the cache key and
// compute closure (nil when pre-skipped).
type job struct {
	scenario Scenario
	key      string
	run      func(context.Context) (any, error)
}

// enumerate expands the resolved spec into the scenario list. Per-cell
// infeasibility (a workload that cannot instantiate or map, a simulator
// limitation) becomes a skipped scenario, never an error.
func (r *resolved) enumerate() []job {
	var jobs []job
	// Cache keys carry exactly the inputs each scenario kind depends on,
	// so runs that differ only in an irrelevant axis still share outcomes.
	budgetKey := "b=" + formatFloat(r.budget)
	collectiveKey := budgetKey + "|m=" + formatFloat(r.bytes)

	for _, topoName := range r.topologies {
		net, err := resolveTopology(topoName)
		if err != nil {
			continue // resolve() already vetted every topology
		}
		npus := net.NPUs()
		bw := topology.EqualBW(r.budget, net.NumDims())
		offload := switchOffload(net, r.inNetwork)

		// Raw collective scenarios: both simulator paths per op.
		for _, op := range r.collectives {
			for _, path := range []string{PathPipeline, PathTransferDAG} {
				sc := Scenario{
					ID:         fmt.Sprintf("%s/%s/%s/%s", KindCollective, topoName, op.Key(), path),
					Kind:       KindCollective,
					Topology:   topoName,
					NPUs:       npus,
					Collective: op.String(),
					Path:       path,
				}
				j := job{scenario: sc}
				chunks := r.chunks
				if path == PathTransferDAG {
					chunks = r.npuChunks
				}
				switch {
				case offload != nil && op == collective.AllReduce:
					j.scenario.skip("the simulators cannot model in-network (switch-offload) All-Reduce reduction")
				case path == PathTransferDAG && npus > r.npuMax:
					j.scenario.skip(fmt.Sprintf("transfer-DAG simulation is capped at %d NPUs (topology has %d)", r.npuMax, npus))
				default:
					cc := CollectiveCase{Net: net, Op: op, Bytes: r.bytes, BW: bw, Chunks: chunks}
					j.key = fmt.Sprintf("validate|%s|%s|c=%d", sc.ID, collectiveKey, chunks)
					j.run = collectiveRun(cc, path)
				}
				jobs = append(jobs, j)
			}
		}

		// Training-iteration scenarios.
		for _, wlName := range r.workloads {
			wl, wlErr := buildWorkload(wlName, npus)
			for _, loop := range r.loops {
				sc := Scenario{
					ID:       fmt.Sprintf("%s/%s/%s/%s", KindIteration, topoName, wlName, loop.Key()),
					Kind:     KindIteration,
					Topology: topoName,
					NPUs:     npus,
					Workload: wlName,
					Loop:     loop.Key(),
					Path:     PathPipeline,
				}
				j := job{scenario: sc}
				switch {
				case wlErr != nil:
					j.scenario.skip(wlErr.Error())
				case offload != nil && usesAllReduce(wl):
					j.scenario.skip("the simulators cannot model in-network (switch-offload) All-Reduce reduction")
				default:
					if _, mapErr := timemodel.MapStrategy(net, wl.Strategy, timemodel.Actual); mapErr != nil {
						j.scenario.skip(mapErr.Error())
						jobs = append(jobs, j)
						continue
					}
					j.key = fmt.Sprintf("validate|%s|%s|c=%d", sc.ID, budgetKey, r.chunks)
					j.run = iterationRun(net, wl, loop, r.chunks, bw)
				}
				jobs = append(jobs, j)
			}
		}
	}
	return jobs
}

func (s *Scenario) skip(reason string) {
	s.Skipped = true
	s.Reason = reason
}

// switchOffload returns the per-dimension offload flags when in-network
// execution is requested and the topology has switch dimensions, nil
// otherwise (nothing to offload).
func switchOffload(net *topology.Network, inNetwork bool) []bool {
	if !inNetwork {
		return nil
	}
	flags := make([]bool, net.NumDims())
	any := false
	for i, d := range net.Dims() {
		if d.Kind == topology.Switch {
			flags[i] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return flags
}

// usesAllReduce reports whether any layer of the workload issues an
// All-Reduce (the only op in-network offload changes).
func usesAllReduce(w *workload.Workload) bool {
	for _, l := range w.Layers {
		for _, cs := range [][]workload.Comm{l.FwdComm, l.TPComm, l.DPComm} {
			for _, c := range cs {
				if c.Op == collective.AllReduce {
					return true
				}
			}
		}
	}
	return false
}

// collectiveRun builds the compute closure of one raw collective
// scenario.
func collectiveRun(cc CollectiveCase, path string) func(context.Context) (any, error) {
	return func(context.Context) (any, error) {
		anaBusy := cc.AnalyticalDimBusy()
		analytical := cc.Analytical()
		var makespan float64
		var dimBusy []float64
		if path == PathTransferDAG {
			res, err := cc.NPULevel()
			if err != nil {
				return nil, err
			}
			makespan, dimBusy = res.Makespan, res.DimBusy
		} else {
			res, err := cc.Pipeline()
			if err != nil {
				return nil, err
			}
			makespan, dimBusy = res.Makespan, res.DimBusy
		}
		return measure(analytical, makespan, anaBusy, dimBusy)
	}
}

// iterationRun builds the compute closure of one training-iteration
// scenario: the closed-form estimator against the chunk-pipeline
// iteration simulation, on identical inputs.
func iterationRun(net *topology.Network, wl *workload.Workload, loop timemodel.Loop, chunks int, bw topology.BWConfig) func(context.Context) (any, error) {
	return func(context.Context) (any, error) {
		est := &timemodel.Estimator{Net: net, Compute: compute.A100(), Loop: loop, Policy: timemodel.Actual}
		b, err := est.Iteration(wl, bw)
		if err != nil {
			return nil, err
		}
		tr, err := sim.SimulateIteration(sim.TrainingConfig{
			Net: net, Compute: compute.A100(), Loop: loop, Policy: timemodel.Actual, Chunks: chunks,
		}, wl, bw)
		if err != nil {
			return nil, err
		}
		return measure(b.Total, tr.Total, b.DimBusy, tr.DimBusy)
	}
}

// Compute runs the conformance matrix: enumerate the scenarios, execute
// every runnable cell concurrently through the Runner (which bounds
// workers and caches outcomes), and aggregate divergence with tolerance
// verdicts. The call fails only for an invalid spec, a nil runner, or a
// canceled context; per-scenario failures are reported in place (and fail
// the Pass verdict).
func Compute(ctx context.Context, r Runner, spec *Spec) (*Report, error) {
	if r == nil {
		return nil, fmt.Errorf("validate: nil runner")
	}
	if spec == nil {
		spec = &Spec{}
	}
	res, err := spec.resolve()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	jobs := res.enumerate()

	runnable := 0
	for i := range jobs {
		if jobs[i].run != nil {
			runnable++
		}
	}
	tracker := core.NewProgressTracker(ctx, "validate", runnable)
	var wg sync.WaitGroup
	for i := range jobs {
		if jobs[i].run == nil {
			continue
		}
		wg.Add(1)
		go func(j *job) {
			defer wg.Done()
			var v any
			var cached bool
			var err error
			if cr, ok := r.(CodecRunner); ok {
				v, cached, err = cr.DoCodec(ctx, j.key, outcomeCodec, j.run)
			} else {
				v, cached, err = r.Do(ctx, j.key, j.run)
			}
			tracker.Tick(err == nil && cached)
			if err != nil {
				j.scenario.Err, j.scenario.Error = err, err.Error()
				return
			}
			o, ok := v.(outcome)
			if !ok {
				j.scenario.Err = fmt.Errorf("validate: scenario key %q returned a foreign cache payload %T", j.key, v)
				j.scenario.Error = j.scenario.Err.Error()
				return
			}
			j.scenario.Cached = cached
			j.scenario.AnalyticalS = o.Analytical
			j.scenario.SimulatedS = o.Simulated
			j.scenario.RelErr = o.RelErr
			j.scenario.DimBusyMaxRelErr = o.DimBusyRelE
		}(&jobs[i])
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{Tolerance: res.tolerance, Scenarios: make([]Scenario, len(jobs))}
	sum := 0.0
	for i := range jobs {
		sc := jobs[i].scenario
		switch {
		case sc.Skipped:
			rep.Skipped++
		case sc.Err != nil:
			rep.Failed++
		default:
			sc.Within = math.Abs(sc.RelErr) <= res.tolerance && sc.DimBusyMaxRelErr <= res.tolerance
			rep.Evaluated++
			if sc.Cached {
				rep.CacheHits++
			} else {
				rep.Solves++
			}
			abs := math.Abs(sc.RelErr)
			sum += abs
			if abs > rep.MaxAbsRelErr || rep.WorstID == "" {
				rep.MaxAbsRelErr = abs
				rep.WorstID = sc.ID
			}
		}
		rep.Scenarios[i] = sc
	}
	if rep.Evaluated > 0 {
		rep.MeanAbsRelErr = sum / float64(rep.Evaluated)
	}
	// A matrix that evaluated nothing validated nothing: Pass demands at
	// least one real comparison, so a spec whose every scenario skips
	// cannot vacuously report conformance.
	rep.Pass = rep.Evaluated > 0 && rep.Failed == 0 && rep.MeanAbsRelErr <= res.tolerance
	for _, sc := range rep.Scenarios {
		if !sc.Skipped && sc.Err == nil && !sc.Within {
			rep.Pass = false
			break
		}
	}
	rep.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return rep, nil
}

// ---- Golden baseline form ----

// BaselineScenario is the committed-baseline projection of a scenario:
// only deterministic fields, floats rounded so the JSON is byte-stable
// across machines.
type BaselineScenario struct {
	ID               string  `json:"id"`
	AnalyticalS      float64 `json:"analytical_s,omitempty"`
	SimulatedS       float64 `json:"simulated_s,omitempty"`
	RelErr           float64 `json:"rel_err,omitempty"`
	DimBusyMaxRelErr float64 `json:"dim_busy_max_rel_err,omitempty"`
	Within           bool    `json:"within,omitempty"`
	Skipped          bool    `json:"skipped,omitempty"`
	Reason           string  `json:"reason,omitempty"`
	Error            string  `json:"error,omitempty"`
}

// BaselineReport is the stable, diffable projection of a Report — what
// VALIDATION_baseline.json commits and CI regenerates: no timings, no
// cache metadata.
type BaselineReport struct {
	Tolerance     float64            `json:"tolerance"`
	Evaluated     int                `json:"evaluated"`
	Skipped       int                `json:"skipped"`
	Failed        int                `json:"failed,omitempty"`
	MeanAbsRelErr float64            `json:"mean_abs_rel_err"`
	MaxAbsRelErr  float64            `json:"max_abs_rel_err"`
	WorstID       string             `json:"worst_id,omitempty"`
	Pass          bool               `json:"pass"`
	Scenarios     []BaselineScenario `json:"scenarios"`
}

// Baseline projects the report onto its committed-golden form.
func (r *Report) Baseline() BaselineReport {
	b := BaselineReport{
		Tolerance:     roundBaseline(r.Tolerance),
		Evaluated:     r.Evaluated,
		Skipped:       r.Skipped,
		Failed:        r.Failed,
		MeanAbsRelErr: roundBaseline(r.MeanAbsRelErr),
		MaxAbsRelErr:  roundBaseline(r.MaxAbsRelErr),
		WorstID:       r.WorstID,
		Pass:          r.Pass,
	}
	for _, sc := range r.Scenarios {
		b.Scenarios = append(b.Scenarios, BaselineScenario{
			ID:               sc.ID,
			AnalyticalS:      roundBaseline(sc.AnalyticalS),
			SimulatedS:       roundBaseline(sc.SimulatedS),
			RelErr:           roundBaseline(sc.RelErr),
			DimBusyMaxRelErr: roundBaseline(sc.DimBusyMaxRelErr),
			Within:           sc.Within,
			Skipped:          sc.Skipped,
			Reason:           sc.Reason,
			Error:            sc.Error,
		})
	}
	return b
}

// roundBaseline rounds to 9 decimal digits — far below any divergence the
// gate cares about, far above float formatting jitter.
func roundBaseline(v float64) float64 {
	return math.Round(v*1e9) / 1e9
}
