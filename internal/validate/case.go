package validate

import (
	"libra/internal/collective"
	"libra/internal/sim"
	"libra/internal/themis"
	"libra/internal/topology"
)

// CollectiveCase is one fully-specified collective execution scenario: an
// op of Bytes payload mapped across every dimension of Net, split into
// Chunks, under the per-dimension BW allocation. It is the shared
// scenario-construction path of the conformance matrix, cmd/libra-sim,
// and examples/simulate, so the analytical bound and the simulator
// backends are always priced on identical inputs.
type CollectiveCase struct {
	Net    *topology.Network
	Op     collective.Op
	Bytes  float64
	BW     topology.BWConfig
	Chunks int
}

// Mapping returns the full-network mapping the case executes over.
func (c CollectiveCase) Mapping() collective.Mapping {
	return collective.FullMapping(c.Net)
}

// Analytical returns the closed-form multi-rail completion time (§IV-C's
// bottleneck bound): max over dimensions of traffic/bandwidth.
func (c CollectiveCase) Analytical() float64 {
	return collective.Time(c.Op, c.Bytes, c.Mapping(), c.BW)
}

// AnalyticalDimBusy returns the closed-form per-dimension busy seconds
// (traffic_d / B_d) the simulators are checked against.
func (c CollectiveCase) AnalyticalDimBusy() []float64 {
	traffic := collective.Traffic(c.Op, c.Bytes, c.Mapping(), c.Net.NumDims())
	busy := make([]float64, len(traffic))
	for d, v := range traffic {
		if v > 0 {
			busy[d] = v / (c.BW[d] * 1e9)
		}
	}
	return busy
}

// Pipeline runs the case on the chunk-pipeline simulator (the symmetric
// ASTRA-sim-substitute backend).
func (c CollectiveCase) Pipeline() (sim.PipelineResult, error) {
	return sim.SimulateCollective(c.Op, c.Bytes, c.Mapping(), c.BW, c.Chunks)
}

// NPULevel runs the case on the NPU-level transfer-DAG simulator, which
// schedules every individual message over per-NPU TX/RX ports.
func (c CollectiveCase) NPULevel() (sim.NetResult, error) {
	return sim.SimulateCollectiveNPULevel(c.Net, c.Op, c.Bytes, c.Mapping(), c.BW, c.Chunks)
}

// Themis runs the case under the Themis greedy chunk scheduler.
func (c CollectiveCase) Themis() (themis.Result, error) {
	return themis.Schedule(c.Op, c.Bytes, c.Mapping(), c.BW, c.Chunks)
}
