package validate

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"libra/internal/collective"
	"libra/internal/core"
	"libra/internal/topology"
)

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	e := core.NewEngine(core.EngineConfig{})
	t.Cleanup(e.Close)
	return e
}

// TestDefaultMatrixConformance is the headline check: the analytical
// model and the simulators agree within the committed tolerance on every
// evaluated scenario of the default matrix, skips carry reasons, and a
// repeated run is answered entirely from the engine cache.
func TestDefaultMatrixConformance(t *testing.T) {
	e := newEngine(t)
	rep, err := Compute(context.Background(), e, &Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("matrix has %d failed scenarios", rep.Failed)
	}
	if !rep.Pass {
		t.Fatalf("default matrix fails its own tolerance %.3f (mean %.4f, max %.4f at %s)",
			rep.Tolerance, rep.MeanAbsRelErr, rep.MaxAbsRelErr, rep.WorstID)
	}
	if rep.Evaluated == 0 || rep.Skipped == 0 {
		t.Fatalf("expected both evaluated and skipped scenarios, got %d/%d", rep.Evaluated, rep.Skipped)
	}
	if rep.MeanAbsRelErr > rep.Tolerance {
		t.Fatalf("mean |rel err| %.4f exceeds tolerance %.3f", rep.MeanAbsRelErr, rep.Tolerance)
	}
	for _, sc := range rep.Scenarios {
		if sc.Skipped {
			if sc.Reason == "" {
				t.Errorf("%s: skipped without a reason", sc.ID)
			}
			continue
		}
		if !sc.Within {
			t.Errorf("%s: |rel err| %.4f / dim-busy %.4f outside tolerance %.3f",
				sc.ID, math.Abs(sc.RelErr), sc.DimBusyMaxRelErr, rep.Tolerance)
		}
		// The chunk-pipeline and transfer-DAG schedules can never beat
		// the analytical bandwidth bound.
		if sc.RelErr < -1e-9 {
			t.Errorf("%s: simulator beat the analytical bound (rel err %v)", sc.ID, sc.RelErr)
		}
	}
	if rep.Solves != rep.Evaluated || rep.CacheHits != 0 {
		t.Fatalf("first run: solves %d / hits %d, want %d / 0", rep.Solves, rep.CacheHits, rep.Evaluated)
	}

	rep2, err := Compute(context.Background(), e, &Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits != rep2.Evaluated || rep2.Solves != 0 {
		t.Fatalf("second run: solves %d / hits %d, want 0 / %d", rep2.Solves, rep2.CacheHits, rep2.Evaluated)
	}
}

// TestBaselineByteStable locks the golden-report form: two independent
// runs (fresh engines) project to byte-identical baselines, and the
// baseline carries no volatile fields.
func TestBaselineByteStable(t *testing.T) {
	run := func() []byte {
		rep, err := Compute(context.Background(), newEngine(t), &Spec{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rep.Baseline(), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("baseline is not byte-stable across runs")
	}
	for _, banned := range []string{"elapsed", "cached", "cache_hits", "solves"} {
		if strings.Contains(string(a), banned) {
			t.Fatalf("baseline JSON carries volatile field %q", banned)
		}
	}
}

// TestWidenedDivergenceFailsGate coarsens the transfer-DAG chunking so
// the All-to-All pipeline bubble widens past the tolerance — the gate
// must trip, scenario-level and aggregate.
func TestWidenedDivergenceFailsGate(t *testing.T) {
	rep, err := Compute(context.Background(), newEngine(t), &Spec{
		Topologies:     []string{topology.Name3DTorus},
		Collectives:    []string{"alltoall"},
		Workloads:      []string{"DLRM"},
		NPULevelChunks: 2, // bubble ≈ (stages−1)/chunks = 100% of the bound
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("widened divergence passed the gate (mean %.4f, max %.4f)", rep.MeanAbsRelErr, rep.MaxAbsRelErr)
	}
	found := false
	for _, sc := range rep.Scenarios {
		if sc.Path == PathTransferDAG && !sc.Skipped && sc.Err == nil {
			found = true
			if sc.Within {
				t.Errorf("%s: rel err %.4f marked within tolerance %.3f", sc.ID, sc.RelErr, rep.Tolerance)
			}
			if sc.RelErr < rep.Tolerance {
				t.Errorf("%s: expected a divergence beyond %.3f, got %.4f", sc.ID, rep.Tolerance, sc.RelErr)
			}
		}
	}
	if !found {
		t.Fatal("no transfer-DAG scenario was evaluated")
	}
}

// TestInNetworkSkips: in-network offload is analytical-only, so
// All-Reduce-bearing scenarios on switch-bearing topologies are skipped
// with that reason, while All-Reduce-free scenarios (DLRM, All-to-All)
// still validate; ring-only topologies have nothing to offload.
func TestInNetworkSkips(t *testing.T) {
	rep, err := Compute(context.Background(), newEngine(t), &Spec{
		Topologies: []string{topology.Name3D512}, // all-switch topology
		Workloads:  []string{"GPT-3", "DLRM"},
		InNetwork:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]Scenario{}
	for _, sc := range rep.Scenarios {
		byID[sc.ID] = sc
	}
	ar := byID["collective/3D-512/allreduce/pipeline"]
	if !ar.Skipped || !strings.Contains(ar.Reason, "in-network") {
		t.Errorf("in-network All-Reduce should skip, got %+v", ar)
	}
	gpt := byID["iteration/3D-512/GPT-3/no-overlap"]
	if !gpt.Skipped || !strings.Contains(gpt.Reason, "in-network") {
		t.Errorf("GPT-3 (All-Reduce TP traffic) should skip under in-network, got %+v", gpt)
	}
	dlrm := byID["iteration/3D-512/DLRM/no-overlap"]
	if dlrm.Skipped {
		t.Errorf("DLRM issues no All-Reduce; should validate under in-network, got skip %q", dlrm.Reason)
	}
	rs := byID["collective/3D-512/reducescatter/pipeline"]
	if rs.Skipped {
		t.Errorf("Reduce-Scatter is unaffected by in-network offload, got skip %q", rs.Reason)
	}

	// A pure ring topology has no switch to offload: nothing skips.
	ring, err := Compute(context.Background(), newEngine(t), &Spec{
		Topologies: []string{topology.Name3DTorus},
		Workloads:  []string{"DLRM"},
		InNetwork:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range ring.Scenarios {
		if sc.Skipped && strings.Contains(sc.Reason, "in-network") {
			t.Errorf("%s: skipped for in-network on a switchless topology", sc.ID)
		}
	}
}

// TestFullySkippedMatrixCannotPass: a spec whose every scenario skips
// validated nothing — the gate must not report vacuous conformance.
func TestFullySkippedMatrixCannotPass(t *testing.T) {
	rep, err := Compute(context.Background(), newEngine(t), &Spec{
		Topologies:  []string{topology.Name3D512}, // all-switch topology
		Workloads:   []string{"GPT-3"},            // All-Reduce TP+DP traffic
		Collectives: []string{"allreduce"},
		InNetwork:   true, // every scenario skips: sims cannot model offload
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Evaluated != 0 || rep.Skipped != len(rep.Scenarios) {
		t.Fatalf("expected a fully-skipped matrix, got %d evaluated / %d skipped", rep.Evaluated, rep.Skipped)
	}
	if rep.Pass {
		t.Fatal("zero evaluated scenarios reported a passing conformance gate")
	}
}

// TestIterationKeysIgnoreCollectivePayload: iteration outcomes do not
// depend on the raw-collective payload, so a run differing only in
// collective_bytes must reuse the cached iteration simulations.
func TestIterationKeysIgnoreCollectivePayload(t *testing.T) {
	e := newEngine(t)
	spec := &Spec{Topologies: []string{topology.Name3DTorus}, Workloads: []string{"DLRM"}}
	if _, err := Compute(context.Background(), e, spec); err != nil {
		t.Fatal(err)
	}
	other := spec.Clone()
	other.CollectiveBytes = 5e8
	rep, err := Compute(context.Background(), e, other)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range rep.Scenarios {
		if sc.Skipped || sc.Err != nil {
			continue
		}
		switch sc.Kind {
		case KindIteration:
			if !sc.Cached {
				t.Errorf("%s: iteration outcome recomputed despite only the collective payload changing", sc.ID)
			}
		case KindCollective:
			if sc.Cached {
				t.Errorf("%s: collective outcome served from cache despite a different payload", sc.ID)
			}
		}
	}
}

// TestUnmappableWorkloadSkips: MSFT-1T's TP=128 cannot divide a 64-NPU
// torus — reported as a skip, never an error.
func TestUnmappableWorkloadSkips(t *testing.T) {
	rep, err := Compute(context.Background(), newEngine(t), &Spec{
		Topologies: []string{topology.Name3DTorus},
		Workloads:  []string{"MSFT-1T"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range rep.Scenarios {
		if sc.Kind != KindIteration {
			continue
		}
		if !sc.Skipped || !strings.Contains(sc.Reason, "TP=128") {
			t.Errorf("%s: want TP=128 divisibility skip, got %+v", sc.ID, sc)
		}
	}
}

func TestSpecFingerprintCanonicalization(t *testing.T) {
	fp := func(s *Spec) string {
		t.Helper()
		f, err := s.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	base := fp(&Spec{})
	same := []*Spec{
		{Topologies: DefaultTopologies(), Workloads: DefaultWorkloads()},
		{Loops: []string{"nooverlap", "overlap"}},
		{Collectives: []string{"ar", "a2a", "rs", "ag"}},
		{Collectives: []string{"allreduce", "allreduce", "alltoall", "reducescatter", "allgather"}},
		{BudgetGBps: DefaultBudgetGBps, Chunks: 64, Tolerance: DefaultTolerance},
		{Topologies: []string{"4D-4K", "3D-Torus", "3D-512"}}, // reordered set
	}
	for i, s := range same {
		if got := fp(s); got != base {
			t.Errorf("spelling %d: fingerprint %s != default %s", i, got, base)
		}
	}
	diff := []*Spec{
		{Tolerance: 0.5},
		{BudgetGBps: 100},
		{Collectives: []string{"allreduce"}},
		{Topologies: []string{"3D-Torus"}},
		{InNetwork: true},
		{Chunks: 32},
		{NPULevelChunks: 8},
		{NPULevelMaxNPUs: 64},
		{CollectiveBytes: 2e9},
	}
	for i, s := range diff {
		if got := fp(s); got == base {
			t.Errorf("variant %d: fingerprint should differ from default", i)
		}
	}

	// Canonical form is idempotent: re-parsing the canonical bytes and
	// canonicalizing again is a fixed point.
	canon, err := (&Spec{Collectives: []string{"ar", "rs", "ag", "a2a"}, Loops: []string{"overlap", "nooverlap"}}).MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseSpec(canon)
	if err != nil {
		t.Fatal(err)
	}
	canon2, err := reparsed.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(canon) != string(canon2) {
		t.Fatalf("canonical form is not idempotent:\n%s\n%s", canon, canon2)
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []*Spec{
		{BudgetGBps: -1},
		{CollectiveBytes: -5},
		{Chunks: -1},
		{NPULevelChunks: -2},
		{NPULevelMaxNPUs: -1},
		{Tolerance: -0.1},
		{Loops: []string{"sideways"}},
		{Collectives: []string{"broadcast"}},
		{Topologies: []string{"definitely-not-a-topology"}},
	}
	for i, s := range bad {
		if _, err := Compute(context.Background(), newEngine(t), s); !errors.Is(err, core.ErrBadSpec) {
			t.Errorf("bad spec %d: want ErrBadSpec, got %v", i, err)
		}
	}
	if _, err := ParseSpec([]byte(`{"topolgies": []}`)); err == nil {
		t.Error("unknown field should fail strict parsing")
	}
	if _, err := ParseSpec([]byte(`{broken`)); err == nil {
		t.Error("malformed JSON should fail")
	}
	if _, err := Compute(context.Background(), nil, &Spec{}); err == nil {
		t.Error("nil runner should fail")
	}
}

func TestComputeNilSpecIsDefaultMatrix(t *testing.T) {
	e := newEngine(t)
	rep, err := Compute(context.Background(), e, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(DefaultTopologies()) * (2*len(DefaultCollectives()) + len(DefaultWorkloads())*len(DefaultLoops()))
	if len(rep.Scenarios) != want {
		t.Fatalf("nil spec enumerated %d scenarios, want %d", len(rep.Scenarios), want)
	}
}

func TestComputeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Compute(ctx, newEngine(t), &Spec{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCollectiveCaseAgainstDirectCalls pins the shared helper to the
// underlying packages so the two CLI binaries and the matrix cannot
// drift from first-principles calls.
func TestCollectiveCaseAgainstDirectCalls(t *testing.T) {
	net := topology.MustParse("RI(4)_RI(4)")
	bw := topology.BWConfig{100, 50}
	cc := CollectiveCase{Net: net, Op: collective.AllReduce, Bytes: 5e8, BW: bw, Chunks: 8}
	if got, want := cc.Analytical(), collective.Time(collective.AllReduce, 5e8, collective.FullMapping(net), bw); got != want {
		t.Fatalf("Analytical %v != collective.Time %v", got, want)
	}
	busy := cc.AnalyticalDimBusy()
	traffic := collective.Traffic(collective.AllReduce, 5e8, cc.Mapping(), net.NumDims())
	for d := range busy {
		if want := traffic[d] / (bw[d] * 1e9); math.Abs(busy[d]-want) > 1e-18 {
			t.Fatalf("dim %d busy %v != %v", d, busy[d], want)
		}
	}
	pr, err := cc.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	nr, err := cc.NPULevel()
	if err != nil {
		t.Fatal(err)
	}
	th, err := cc.Themis()
	if err != nil {
		t.Fatal(err)
	}
	ana := cc.Analytical()
	for name, makespan := range map[string]float64{"pipeline": pr.Makespan, "npu-level": nr.Makespan, "themis": th.Makespan} {
		if makespan < ana-1e-12 {
			t.Errorf("%s makespan %v beats the analytical bound %v", name, makespan, ana)
		}
	}
}

// TestPipelineNeverBeatsBoundRandomized is a property check feeding the
// matrix's core invariant with randomized shapes: for any mapping, chunk
// count, payload, and bandwidths, the simulated makespan ≥ the analytical
// bottleneck bound and busy times match the closed form.
func TestPipelineNeverBeatsBoundRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []collective.Op{collective.ReduceScatter, collective.AllGather, collective.AllReduce, collective.AllToAll}
	for i := 0; i < 60; i++ {
		ndims := 1 + rng.Intn(3)
		shape := make([]string, ndims)
		kinds := []string{"RI", "FC", "SW"}
		for d := range shape {
			shape[d] = kinds[rng.Intn(len(kinds))] + "(" + string(rune('2'+rng.Intn(3))) + ")"
		}
		net := topology.MustParse(strings.Join(shape, "_"))
		bw := make(topology.BWConfig, ndims)
		for d := range bw {
			bw[d] = 1 + 400*rng.Float64()
		}
		cc := CollectiveCase{
			Net:    net,
			Op:     ops[rng.Intn(len(ops))],
			Bytes:  1e6 * (1 + rng.Float64()*1e3),
			BW:     bw,
			Chunks: 1 + rng.Intn(32),
		}
		pr, err := cc.Pipeline()
		if err != nil {
			t.Fatalf("case %d (%s %v): %v", i, net.Name(), cc.Op, err)
		}
		if ana := cc.Analytical(); pr.Makespan < ana-1e-12 {
			t.Fatalf("case %d (%s %v, %d chunks): makespan %v < bound %v",
				i, net.Name(), cc.Op, cc.Chunks, pr.Makespan, ana)
		}
		for d, want := range cc.AnalyticalDimBusy() {
			if got := pr.DimBusy[d]; math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("case %d dim %d busy %v != analytical %v", i, d, got, want)
			}
		}
	}
}

// TestMeasure pins the divergence metric itself.
func TestMeasure(t *testing.T) {
	o, err := measure(2, 2.2, []float64{1, 0}, []float64{1.05, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.RelErr-0.1) > 1e-12 {
		t.Fatalf("rel err %v, want 0.1", o.RelErr)
	}
	// dim 0: 5% off; dim 1: idle analytically, measured against dim 0's
	// scale → 10%.
	if math.Abs(o.DimBusyRelE-0.1) > 1e-12 {
		t.Fatalf("dim busy rel err %v, want 0.1", o.DimBusyRelE)
	}
	if _, err := measure(0, 1, nil, nil); err == nil {
		t.Fatal("zero analytical time must be rejected")
	}
	if _, err := measure(1, math.Inf(1), nil, nil); err == nil {
		t.Fatal("infinite simulated time must be rejected")
	}
}
