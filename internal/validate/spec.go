package validate

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"libra/internal/collective"
	"libra/internal/core"
	"libra/internal/sim"
	"libra/internal/timemodel"
	"libra/internal/topology"
	"libra/internal/workload"
)

// Defaults of the conformance matrix. The default axes are deliberately
// modest — three system scales, the three most collective-diverse Table II
// workloads, both training loops, and the four Fig. 6 patterns — so the
// whole matrix regenerates in seconds and can gate every push.
const (
	// DefaultTolerance is the committed divergence gate: every evaluated
	// scenario's |relative error| (total time and per-dimension busy time)
	// must stay within it. The chunk-pipeline simulator's fill/drain
	// bubbles put real scenarios a few percent above the analytical bound
	// (the paper reports ~5% mean vs ASTRA-sim); the transfer-DAG path
	// runs coarser chunking and sits slightly higher.
	DefaultTolerance = 0.15
	// DefaultBudgetGBps is the per-NPU bandwidth budget split equally
	// across dimensions for every scenario.
	DefaultBudgetGBps = 300
	// DefaultCollectiveBytes is the payload of the raw collective
	// scenarios.
	DefaultCollectiveBytes = 1e9
	// DefaultNPULevelChunks is the chunk count of the transfer-DAG path
	// (the full 64 chunks would schedule hundreds of thousands of
	// individual messages).
	DefaultNPULevelChunks = 16
	// DefaultNPULevelMaxNPUs caps the topologies the transfer-DAG path
	// simulates; larger systems are reported as skipped. Scheduling is
	// O(transfers²) and transfer counts grow with NPUs × chunks.
	DefaultNPULevelMaxNPUs = 128
	// MaxScenarios bounds one validation run, like frontier.MaxPoints.
	MaxScenarios = 4096
)

// DefaultTopologies returns the default topology axis: the three Table III
// scales the matrix covers (64, 512, and 4,096 NPUs).
func DefaultTopologies() []string {
	return []string{topology.Name3DTorus, topology.Name3D512, topology.Name4D4K}
}

// DefaultWorkloads returns the default workload axis: GPT-3 (TP+DP
// All-Reduce mix), MSFT-1T (TP-dominant), and DLRM (all-NPU All-to-All).
func DefaultWorkloads() []string {
	return []string{"GPT-3", "MSFT-1T", "DLRM"}
}

// DefaultLoops returns both Fig. 5 training loops.
func DefaultLoops() []string {
	return []string{timemodel.NoOverlap.Key(), timemodel.TPDPOverlap.Key()}
}

// DefaultCollectives returns the four Fig. 6 collective patterns.
func DefaultCollectives() []string {
	return []string{
		collective.ReduceScatter.Key(),
		collective.AllGather.Key(),
		collective.AllReduce.Key(),
		collective.AllToAll.Key(),
	}
}

// Spec describes one analytical-vs-simulator conformance run: the matrix
// axes, the simulation parameters, and the divergence tolerance. Zero or
// omitted fields take the defaults above, so the zero Spec is the default
// matrix. Specs are serializable (JSON), Clone-able, and fingerprint
// canonically like core.ProblemSpec and codesign.Spec: every spelling of
// the same matrix ("ar" vs "allreduce", listed vs implied defaults)
// digests identically.
type Spec struct {
	// Topologies lists Table III preset names or block notation.
	Topologies []string `json:"topologies,omitempty"`
	// Workloads lists Table II workload preset names for the
	// training-iteration scenarios.
	Workloads []string `json:"workloads,omitempty"`
	// Loops lists training loops ("no-overlap", "tp-dp-overlap").
	Loops []string `json:"loops,omitempty"`
	// Collectives lists raw collective patterns ("allreduce", ...).
	Collectives []string `json:"collectives,omitempty"`
	// BudgetGBps is the per-NPU bandwidth budget, split equally across
	// dimensions (EqualBW) for every scenario.
	BudgetGBps float64 `json:"budget_gbps,omitempty"`
	// CollectiveBytes is the raw collective payload in bytes.
	CollectiveBytes float64 `json:"collective_bytes,omitempty"`
	// Chunks is the chunk-pipeline simulator's chunk count (default: the
	// paper's 64).
	Chunks int `json:"chunks,omitempty"`
	// NPULevelChunks is the transfer-DAG path's chunk count.
	NPULevelChunks int `json:"npu_level_chunks,omitempty"`
	// NPULevelMaxNPUs caps transfer-DAG scenarios by system size; larger
	// topologies report the path as skipped.
	NPULevelMaxNPUs int `json:"npu_level_max_npus,omitempty"`
	// InNetwork requests in-network (switch-offload) All-Reduce
	// execution. The analytical model prices it (§IV-C), but neither
	// simulator backend models switch-side reduction, so affected
	// scenarios on switch-bearing topologies are reported as skipped with
	// that reason rather than compared.
	InNetwork bool `json:"in_network,omitempty"`
	// Tolerance is the |relative error| gate per evaluated scenario and
	// for the aggregate mean (default DefaultTolerance).
	Tolerance float64 `json:"tolerance,omitempty"`
}

// ParseSpec decodes a Spec from JSON, rejecting unknown fields so typos in
// hand-written spec files fail loudly.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("validate: bad spec: %w", err)
	}
	return &s, nil
}

// Clone deep-copies the spec (via its JSON form).
func (s *Spec) Clone() *Spec {
	data, err := json.Marshal(s)
	if err != nil {
		cp := *s
		return &cp
	}
	var cp Spec
	if err := json.Unmarshal(data, &cp); err != nil {
		cp = *s
	}
	return &cp
}

// resolved is a spec with every default filled and every axis parsed.
type resolved struct {
	topologies  []string
	workloads   []string
	loops       []timemodel.Loop
	collectives []collective.Op
	budget      float64
	bytes       float64
	chunks      int
	npuChunks   int
	npuMax      int
	inNetwork   bool
	tolerance   float64
}

// resolve validates the spec and fills defaults. All failures are the
// caller's fault and wrap core.ErrBadSpec.
func (s *Spec) resolve() (*resolved, error) {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: validate: %s", core.ErrBadSpec, fmt.Sprintf(format, args...))
	}
	r := &resolved{
		topologies: dedupe(s.Topologies),
		workloads:  dedupe(s.Workloads),
		budget:     s.BudgetGBps,
		bytes:      s.CollectiveBytes,
		chunks:     s.Chunks,
		npuChunks:  s.NPULevelChunks,
		npuMax:     s.NPULevelMaxNPUs,
		inNetwork:  s.InNetwork,
		tolerance:  s.Tolerance,
	}
	if len(r.topologies) == 0 {
		r.topologies = DefaultTopologies()
	}
	if len(r.workloads) == 0 {
		r.workloads = DefaultWorkloads()
	}
	loops := dedupe(s.Loops)
	if len(loops) == 0 {
		loops = DefaultLoops()
	}
	for _, l := range loops {
		loop, err := core.ParseLoop(l)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", core.ErrBadSpec, err)
		}
		r.loops = append(r.loops, loop)
	}
	r.loops = dedupeLoops(r.loops)
	ops := dedupe(s.Collectives)
	if len(ops) == 0 {
		ops = DefaultCollectives()
	}
	for _, o := range ops {
		op, err := collective.ParseOp(o)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", core.ErrBadSpec, err)
		}
		r.collectives = append(r.collectives, op)
	}
	r.collectives = dedupeOps(r.collectives)
	// Every topology must at least resolve; per-scenario failures beyond
	// that (workload instantiation, strategy mapping) are data, not errors.
	for _, t := range r.topologies {
		if _, err := resolveTopology(t); err != nil {
			return nil, fmt.Errorf("%w: %w", core.ErrBadSpec, err)
		}
	}
	if r.budget == 0 {
		r.budget = DefaultBudgetGBps
	}
	if !(r.budget > 0) {
		return nil, bad("budget must be positive, got %v", s.BudgetGBps)
	}
	if r.bytes == 0 {
		r.bytes = DefaultCollectiveBytes
	}
	if !(r.bytes > 0) {
		return nil, bad("collective payload must be positive, got %v", s.CollectiveBytes)
	}
	if r.chunks == 0 {
		r.chunks = sim.DefaultChunks
	}
	if r.chunks < 1 {
		return nil, bad("chunk count must be ≥ 1, got %d", s.Chunks)
	}
	if r.npuChunks == 0 {
		r.npuChunks = DefaultNPULevelChunks
	}
	if r.npuChunks < 1 {
		return nil, bad("NPU-level chunk count must be ≥ 1, got %d", s.NPULevelChunks)
	}
	if r.npuMax == 0 {
		r.npuMax = DefaultNPULevelMaxNPUs
	}
	if r.npuMax < 1 {
		return nil, bad("NPU-level NPU cap must be ≥ 1, got %d", s.NPULevelMaxNPUs)
	}
	if r.tolerance == 0 {
		r.tolerance = DefaultTolerance
	}
	if !(r.tolerance > 0) {
		return nil, bad("tolerance must be positive, got %v", s.Tolerance)
	}
	n := len(r.topologies) * (len(r.collectives)*2 + len(r.workloads)*len(r.loops))
	if n > MaxScenarios {
		return nil, bad("%d scenarios exceed the %d-scenario limit", n, MaxScenarios)
	}
	return r, nil
}

// resolveTopology reads a preset name or block notation.
func resolveTopology(name string) (*topology.Network, error) {
	net, err := topology.Preset(name)
	if err == nil {
		return net, nil
	}
	net, perr := topology.Parse(name)
	if perr != nil {
		return nil, fmt.Errorf("validate: topology %q is neither a preset nor block notation: %w", name, perr)
	}
	return net, nil
}

// buildWorkload instantiates a Table II preset on the topology's NPU
// count.
func buildWorkload(name string, npus int) (*workload.Workload, error) {
	return workload.Preset(name, npus)
}

// ---- Canonicalization and fingerprinting ----

// MarshalCanonical returns the spec's canonical JSON form: axes are
// sorted, deduplicated, and spelled with their canonical keys; defaults
// are elided. Scenario-set semantics are order-independent (the matrix is
// a set), so reordered axes describe the same run.
func (s *Spec) MarshalCanonical() ([]byte, error) {
	r, err := s.resolve()
	if err != nil {
		return nil, err
	}
	canon := &Spec{InNetwork: r.inNetwork}
	topos := append([]string(nil), r.topologies...)
	sort.Strings(topos)
	if !equalStrings(topos, sortedStrings(DefaultTopologies())) {
		canon.Topologies = topos
	}
	wls := append([]string(nil), r.workloads...)
	sort.Strings(wls)
	if !equalStrings(wls, sortedStrings(DefaultWorkloads())) {
		canon.Workloads = wls
	}
	loops := make([]string, len(r.loops))
	for i, l := range r.loops {
		loops[i] = l.Key()
	}
	sort.Strings(loops)
	if !equalStrings(loops, sortedStrings(DefaultLoops())) {
		canon.Loops = loops
	}
	ops := make([]string, len(r.collectives))
	for i, o := range r.collectives {
		ops[i] = o.Key()
	}
	sort.Strings(ops)
	if !equalStrings(ops, sortedStrings(DefaultCollectives())) {
		canon.Collectives = ops
	}
	if r.budget != DefaultBudgetGBps {
		canon.BudgetGBps = r.budget
	}
	if r.bytes != DefaultCollectiveBytes {
		canon.CollectiveBytes = r.bytes
	}
	if r.chunks != sim.DefaultChunks {
		canon.Chunks = r.chunks
	}
	if r.npuChunks != DefaultNPULevelChunks {
		canon.NPULevelChunks = r.npuChunks
	}
	if r.npuMax != DefaultNPULevelMaxNPUs {
		canon.NPULevelMaxNPUs = r.npuMax
	}
	if r.tolerance != DefaultTolerance {
		canon.Tolerance = r.tolerance
	}
	return json.Marshal(canon)
}

// Fingerprint returns a stable hex digest of the canonical spec. Two
// specs describing the same conformance matrix fingerprint identically
// regardless of spelling.
func (s *Spec) Fingerprint() (string, error) {
	data, err := s.MarshalCanonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// ---- Small helpers ----

func dedupe(in []string) []string {
	var out []string
	seen := map[string]bool{}
	for _, v := range in {
		if v == "" || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

func dedupeLoops(in []timemodel.Loop) []timemodel.Loop {
	var out []timemodel.Loop
	seen := map[timemodel.Loop]bool{}
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func dedupeOps(in []collective.Op) []collective.Op {
	var out []collective.Op
	seen := map[collective.Op]bool{}
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func sortedStrings(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}
