package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"libra/internal/core"
	"libra/internal/jobs"
	"libra/internal/task"
	"libra/internal/telemetry"
)

// handleTasks is POST /v2/tasks: run one task envelope synchronously and
// answer with exactly the payload the matching /v1 endpoint returns.
func (s *server) handleTasks(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	t, err := task.Parse(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSpec, err)
		return
	}
	s.runTask(w, r, t)
}

// handleJobs is POST /v2/jobs (submit) and GET /v2/jobs (paginated
// listing).
func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		data, ok := s.readLimitedBody(w, r)
		if !ok {
			return
		}
		t, err := task.Parse(data)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadSpec, err)
			return
		}
		job, err := s.jobs.Submit(r.Context(), t)
		if err != nil {
			status, code := jobStatus(err)
			writeError(w, status, code, err)
			return
		}
		w.Header().Set("Location", "/v2/jobs/"+job.ID)
		writeJSONStatus(w, http.StatusAccepted, job)
	case http.MethodGet:
		q := r.URL.Query()
		req := jobs.ListRequest{Status: jobs.Status(q.Get("status"))}
		var err error
		if req.Offset, err = queryInt(q.Get("offset")); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("offset: %w", err))
			return
		}
		if req.Limit, err = queryInt(q.Get("limit")); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("limit: %w", err))
			return
		}
		writeJSON(w, s.jobs.List(req))
	default:
		writeMethodNotAllowed(w, "GET, POST")
	}
}

// handleJob routes /v2/jobs/{id} (GET snapshot, DELETE cancel) and
// /v2/jobs/{id}/events (SSE stream).
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v2/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "events") {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("no such resource %q", r.URL.Path))
		return
	}
	if sub == "events" {
		if r.Method != http.MethodGet {
			writeMethodNotAllowed(w, http.MethodGet)
			return
		}
		s.streamJobEvents(w, r, id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		job, err := s.jobs.Get(id)
		if err != nil {
			status, code := jobStatus(err)
			writeError(w, status, code, err)
			return
		}
		// A successfully finished job's payload is determined by its task
		// fingerprint, so it revalidates like a sync result. Non-done
		// snapshots still change (progress, status) and stay untagged.
		if job.Status == jobs.StatusDone && writeConditional(w, r, job.Fingerprint) {
			return
		}
		writeJSON(w, job)
	case http.MethodDelete:
		job, err := s.jobs.Cancel(id)
		if err != nil {
			status, code := jobStatus(err)
			writeError(w, status, code, err)
			return
		}
		writeJSON(w, job)
	default:
		writeMethodNotAllowed(w, "GET, DELETE")
	}
}

// streamJobEvents is GET /v2/jobs/{id}/events: the job's ordered event
// log as Server-Sent Events — replayed from the start, then followed
// live until the terminal status event (which always ends the stream).
// Each event is `event: status|progress`, `id: <seq>`, `data: <Event
// JSON>`. A `?from=<seq>` query resumes after a previously seen seq.
func (s *server) streamJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	from, err := queryInt(r.URL.Query().Get("from"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadSpec, fmt.Errorf("from: %w", err))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, fmt.Errorf("response writer cannot stream"))
		return
	}
	// Fail before committing to the event-stream content type.
	if _, _, err := s.jobs.EventsSince(id, from); err != nil {
		status, code := jobStatus(err)
		writeError(w, status, code, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	telemetry.JobWatchers.Inc()
	defer telemetry.JobWatchers.Dec()

	idx := from
	for {
		events, more, err := s.jobs.EventsSince(id, idx)
		if err != nil {
			// Evicted mid-stream: nothing further will arrive.
			return
		}
		for _, ev := range events {
			data, err := json.Marshal(ev)
			if err != nil {
				// An unencodable event poisons the whole stream: log it and
				// drop this watcher rather than ship a gap silently.
				s.log.Error("sse encode failed, closing stream",
					"job", id, "seq", ev.Seq, "error", err)
				return
			}
			if _, err := fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data); err != nil {
				// The watcher's connection is gone; unwinding unregisters it.
				s.log.Debug("sse write failed, closing stream",
					"job", id, "seq", ev.Seq, "error", err)
				return
			}
			if ev.Type == jobs.EventStatus && ev.Status.Terminal() {
				flusher.Flush()
				return
			}
		}
		idx += len(events)
		flusher.Flush()
		// An in-range stream always returns at the terminal status event
		// above, so an empty read needs a liveness check: a terminal job
		// appends nothing further (its notify channel never closes again),
		// and waiting would hang a ?from= pointed past the end of the log.
		if len(events) == 0 {
			snap, gerr := s.jobs.Get(id)
			if gerr != nil {
				return
			}
			if snap.Status.Terminal() {
				// The terminal event may have landed between the two
				// reads; drain it on the next pass, otherwise end the
				// stream — nothing can ever arrive past a terminal log.
				if evs, _, err := s.jobs.EventsSince(id, idx); err != nil || len(evs) == 0 {
					return
				}
				continue
			}
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

// jobStatus maps job-manager errors onto (HTTP status, code).
func jobStatus(err error) (int, string) {
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, jobs.ErrFull):
		return http.StatusTooManyRequests, CodeTooManyJobs
	case errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable, CodeUnavailable
	case errors.Is(err, core.ErrBadSpec):
		return http.StatusBadRequest, CodeBadSpec
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

func queryInt(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("want a non-negative integer, got %q", s)
	}
	return v, nil
}
