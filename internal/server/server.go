// Package server is libra-serve's HTTP layer: the /v2 task-envelope API
// (sync tasks, async jobs with SSE progress) plus the legacy /v1 per-kind
// endpoints, every one a thin shim over the same task.Run dispatch.
// cmd/libra-serve wires it to a listener; tests (and embedders) mount
// NewMux directly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"

	"libra/internal/core"
	"libra/internal/jobs"
	"libra/internal/task"
)

// Stable machine-readable error codes, shared by the v1 and v2 surfaces
// through the single writeError path. Clients branch on these, never on
// message text.
const (
	CodeBadSpec          = "bad_spec"
	CodeCancelled        = "cancelled"
	CodeUnavailable      = "unavailable"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeTooLarge         = "too_large"
	CodeTooManyJobs      = "too_many_jobs"
	CodeInternal         = "internal"
)

type server struct {
	engine  *core.Engine
	jobs    *jobs.Manager
	maxBody int64
}

// NewMux wires the full service surface onto a fresh mux — what main
// serves and what httptest drives are the same handler.
func NewMux(engine *core.Engine, manager *jobs.Manager, maxBody int64) http.Handler {
	s := &server{engine: engine, jobs: manager, maxBody: maxBody}
	mux := http.NewServeMux()
	// v1: one shim per kind over the same dispatch v2 uses.
	mux.HandleFunc("/v1/optimize", s.v1(task.KindOptimize))
	mux.HandleFunc("/v1/evaluate", s.v1(task.KindEvaluate))
	mux.HandleFunc("/v1/sweep", s.v1(task.KindSweep))
	mux.HandleFunc("/v1/frontier", s.v1(task.KindFrontier))
	mux.HandleFunc("/v1/codesign", s.v1(task.KindCoDesign))
	mux.HandleFunc("/v1/validate", s.v1(task.KindValidate))
	mux.HandleFunc("/v1/cluster", s.v1(task.KindCluster))
	mux.HandleFunc("/v1/stats", s.handleStats)
	// v2: the task envelope, sync and async.
	mux.HandleFunc("/v2/tasks", s.handleTasks)
	mux.HandleFunc("/v2/jobs", s.handleJobs)
	mux.HandleFunc("/v2/jobs/", s.handleJob)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// v1 builds the legacy per-kind handler: the body is exactly the
// envelope's kind payload, the answer exactly the payload /v2/tasks
// returns for that kind.
func (s *server) v1(kind task.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		data, ok := s.readBody(w, r)
		if !ok {
			return
		}
		t, err := task.FromKindPayload(kind, data)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadSpec, err)
			return
		}
		s.runTask(w, r, t)
	}
}

// runTask answers one task synchronously — the shared tail of every v1
// shim and of POST /v2/tasks.
func (s *server) runTask(w http.ResponseWriter, r *http.Request, t *task.Task) {
	res, err := task.Run(r.Context(), s.engine, t)
	if err != nil {
		status, code := solveStatus(r, err)
		writeError(w, status, code, err)
		return
	}
	writeJSON(w, res)
}

// readBody enforces POST, reads at most maxBody bytes, and maps an
// oversized body to 413 Request Entity Too Large.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost)
		return nil, false
	}
	return s.readLimitedBody(w, r)
}

// readLimitedBody is readBody minus the method check, for handlers that
// route methods themselves; the 400/413 error mapping exists only here.
func (s *server) readLimitedBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		status, code := http.StatusBadRequest, CodeBadSpec
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status, code = http.StatusRequestEntityTooLarge, CodeTooLarge
		}
		writeError(w, status, code, err)
		return nil, false
	}
	return data, true
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, s.engine.Stats())
}

// solveStatus maps a solve error to HTTP status and code: bad specs are
// the caller's fault (400), cancellations follow the client disconnect
// (408) or server shutdown (503), and anything else is a solver-side 500.
func solveStatus(r *http.Request, err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrBadSpec):
		return http.StatusBadRequest, CodeBadSpec
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			return http.StatusRequestTimeout, CodeCancelled
		}
		return http.StatusServiceUnavailable, CodeUnavailable
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("libra-serve: encode: %v", err)
	}
}

func writeMethodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use %s", allow))
}

// writeError is the one error path of both API versions: a JSON envelope
// with the human message and the stable machine code.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}{err.Error(), code})
}
