// Package server is libra-serve's HTTP layer: the /v2 task-envelope API
// (sync tasks, async jobs with SSE progress) plus the legacy /v1 per-kind
// endpoints, every one a thin shim over the same task.Run dispatch.
// cmd/libra-serve wires it to a listener; tests (and embedders) mount
// New (or the NewMux shim) directly.
//
// Every route is wrapped by one instrument middleware: it mints a trace
// ID per request (honoring a well-formed inbound X-Request-Id), echoes
// it back as the X-Request-Id response header, carries it on the request
// context for task dispatch and job submission, counts the request into
// the per-route/method/status series, times it into the per-route
// latency histogram, and emits one structured access-log line.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"libra/internal/core"
	"libra/internal/jobs"
	"libra/internal/task"
	"libra/internal/telemetry"
)

// Stable machine-readable error codes, shared by the v1 and v2 surfaces
// through the single writeError path. Clients branch on these, never on
// message text.
const (
	CodeBadSpec          = "bad_spec"
	CodeCancelled        = "cancelled"
	CodeUnavailable      = "unavailable"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeTooLarge         = "too_large"
	CodeTooManyJobs      = "too_many_jobs"
	CodeInternal         = "internal"
)

type server struct {
	engine  *core.Engine
	jobs    *jobs.Manager
	maxBody int64
	log     *slog.Logger
}

// Options configures the HTTP layer.
type Options struct {
	// Engine answers the tasks; required.
	Engine *core.Engine
	// Jobs runs the async /v2/jobs API; required.
	Jobs *jobs.Manager
	// MaxBody bounds request bodies in bytes.
	MaxBody int64
	// Logger receives access and error logs; nil selects slog.Default().
	Logger *slog.Logger
}

// NewMux wires the full service surface onto a fresh mux — what main
// serves and what httptest drives are the same handler. Logging goes to
// slog.Default(); use New to inject a logger.
func NewMux(engine *core.Engine, manager *jobs.Manager, maxBody int64) http.Handler {
	return New(Options{Engine: engine, Jobs: manager, MaxBody: maxBody})
}

// New wires the full service surface onto a fresh mux.
func New(opts Options) http.Handler {
	lg := opts.Logger
	if lg == nil {
		lg = slog.Default()
	}
	s := &server{engine: opts.Engine, jobs: opts.Jobs, maxBody: opts.MaxBody, log: lg}
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.Handle(route, s.instrument(route, h))
	}
	// v1: one shim per kind over the same dispatch v2 uses.
	handle("/v1/optimize", s.v1(task.KindOptimize))
	handle("/v1/evaluate", s.v1(task.KindEvaluate))
	handle("/v1/sweep", s.v1(task.KindSweep))
	handle("/v1/frontier", s.v1(task.KindFrontier))
	handle("/v1/codesign", s.v1(task.KindCoDesign))
	handle("/v1/validate", s.v1(task.KindValidate))
	handle("/v1/cluster", s.v1(task.KindCluster))
	handle("/v1/stats", s.handleStats)
	// v2: the task envelope, sync and async.
	handle("/v2/tasks", s.handleTasks)
	handle("/v2/jobs", s.handleJobs)
	handle("/v2/jobs/", s.handleJob)
	// Operational surface. /metrics is deliberately uninstrumented — a
	// scraper polling every few seconds would drown the request series
	// with its own traffic.
	mux.Handle("/metrics", telemetry.Default.Handler())
	handle("/healthz", s.handleHealthz)
	handle("/readyz", s.handleReadyz)
	return mux
}

// instrument is the per-route middleware: request-ID handling, request
// metrics, and the access log.
func (s *server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := telemetry.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if rid == "" {
			rid = telemetry.NewTraceID()
		}
		w.Header().Set("X-Request-Id", rid)
		r = r.WithContext(telemetry.WithTraceID(r.Context(), rid))

		sw := wrapStatusWriter(w)
		telemetry.HTTPInFlight.Inc()
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		telemetry.HTTPInFlight.Dec()
		code := strconv.Itoa(sw.statusCode())
		telemetry.HTTPRequests.With(route, r.Method, code).Inc()
		telemetry.HTTPDuration.With(route).Observe(elapsed.Seconds())
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", sw.statusCode(),
			"duration_ms", float64(elapsed)/float64(time.Millisecond),
			"request_id", rid,
		)
	})
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) statusCode() int {
	if sw.status == 0 {
		return http.StatusOK
	}
	return sw.status
}

// flushStatusWriter adds Flush passthrough so the SSE endpoint still
// sees an http.Flusher through the instrumented writer.
type flushStatusWriter struct {
	*statusWriter
	f http.Flusher
}

func (fw *flushStatusWriter) Flush() { fw.f.Flush() }

// statusCapturer is the common view instrument takes of both wrappers.
type statusCapturer interface {
	http.ResponseWriter
	statusCode() int
}

// wrapStatusWriter picks the wrapper that preserves the underlying
// writer's streaming ability.
func wrapStatusWriter(w http.ResponseWriter) statusCapturer {
	sw := &statusWriter{ResponseWriter: w}
	if f, ok := w.(http.Flusher); ok {
		return &flushStatusWriter{statusWriter: sw, f: f}
	}
	return sw
}

// v1 builds the legacy per-kind handler: the body is exactly the
// envelope's kind payload, the answer exactly the payload /v2/tasks
// returns for that kind.
func (s *server) v1(kind task.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		data, ok := s.readBody(w, r)
		if !ok {
			return
		}
		t, err := task.FromKindPayload(kind, data)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadSpec, err)
			return
		}
		s.runTask(w, r, t)
	}
}

// runTask answers one task synchronously — the shared tail of every v1
// shim and of POST /v2/tasks. The canonical fingerprint doubles as the
// response ETag, and a matching If-None-Match short-circuits to 304
// before any solving happens (see etag.go).
func (s *server) runTask(w http.ResponseWriter, r *http.Request, t *task.Task) {
	fp, fpErr := t.Fingerprint()
	if fpErr == nil && writeConditional(w, r, fp) {
		return
	}
	res, err := task.Run(r.Context(), s.engine, t)
	if err != nil {
		w.Header().Del("ETag")
		status, code := solveStatus(r, err)
		writeError(w, status, code, err)
		return
	}
	writeJSON(w, res)
}

// readBody enforces POST, reads at most maxBody bytes, and maps an
// oversized body to 413 Request Entity Too Large.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if r.Method != http.MethodPost {
		writeMethodNotAllowed(w, http.MethodPost)
		return nil, false
	}
	return s.readLimitedBody(w, r)
}

// readLimitedBody is readBody minus the method check, for handlers that
// route methods themselves; the 400/413 error mapping exists only here.
func (s *server) readLimitedBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		status, code := http.StatusBadRequest, CodeBadSpec
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status, code = http.StatusRequestEntityTooLarge, CodeTooLarge
		}
		writeError(w, status, code, err)
		return nil, false
	}
	return data, true
}

// ServerStats is the GET /v1/stats payload: the engine's cache/load
// counters plus the job manager's retention state.
type ServerStats struct {
	Engine core.EngineStats `json:"engine"`
	Jobs   jobs.Stats       `json:"jobs"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, ServerStats{Engine: s.engine.Stats(), Jobs: s.jobs.Stats()})
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 when the engine accepts work
// and the job manager would accept a submission, 503 with the reason
// otherwise.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeMethodNotAllowed(w, http.MethodGet)
		return
	}
	if err := s.engine.Ready(); err != nil {
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]string{"status": "unavailable", "reason": err.Error()})
		return
	}
	if err := s.jobs.Ready(); err != nil {
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]string{"status": "unavailable", "reason": err.Error()})
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}

// solveStatus maps a solve error to HTTP status and code: bad specs are
// the caller's fault (400), cancellations follow the client disconnect
// (408) or server shutdown (503), and anything else is a solver-side 500.
func solveStatus(r *http.Request, err error) (int, string) {
	switch {
	case errors.Is(err, core.ErrBadSpec):
		return http.StatusBadRequest, CodeBadSpec
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			return http.StatusRequestTimeout, CodeCancelled
		}
		return http.StatusServiceUnavailable, CodeUnavailable
	default:
		return http.StatusInternalServerError, CodeInternal
	}
}

func writeJSON(w http.ResponseWriter, v any) { writeJSONStatus(w, http.StatusOK, v) }

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slog.Error("response encode failed", "error", err)
	}
}

func writeMethodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, fmt.Errorf("use %s", allow))
}

// writeError is the one error path of both API versions: a JSON envelope
// with the human message and the stable machine code.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}{err.Error(), code})
}
