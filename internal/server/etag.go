package server

import (
	"net/http"
	"strings"
)

// Conditional GET support. Every result a task endpoint serves is a
// deterministic function of the task's canonical fingerprint (solves are
// pure given a pinned model version), so the fingerprint IS the entity
// tag: a client holding any previous answer for a spec can revalidate
// with If-None-Match and be told 304 Not Modified without the server
// solving, caching, or even having seen that spec before. The same tag
// is served by /v1/<kind>, /v2/tasks, and a done /v2/jobs/{id}, and is
// stable across restarts.

// taskETag formats a fingerprint as a strong entity tag.
func taskETag(fingerprint string) string { return `"` + fingerprint + `"` }

// etagMatch implements the If-None-Match comparison (RFC 9110 §13.1.2):
// a comma-separated list of entity tags or "*", compared weakly — a W/
// prefix on either side is ignored, since a fingerprint match guarantees
// semantic equivalence.
func etagMatch(ifNoneMatch, etag string) bool {
	ifNoneMatch = strings.TrimSpace(ifNoneMatch)
	if ifNoneMatch == "" {
		return false
	}
	if ifNoneMatch == "*" {
		return true
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, candidate := range strings.Split(ifNoneMatch, ",") {
		candidate = strings.TrimPrefix(strings.TrimSpace(candidate), "W/")
		if candidate == etag {
			return true
		}
	}
	return false
}

// writeConditional sets the ETag header and answers 304 (no body) when
// the request's If-None-Match matches. Returns true when the response
// is complete.
func writeConditional(w http.ResponseWriter, r *http.Request, fingerprint string) bool {
	if fingerprint == "" {
		return false
	}
	etag := taskETag(fingerprint)
	w.Header().Set("ETag", etag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}
