package libra_test

import (
	"context"
	"math"
	"testing"

	"libra"
	"libra/internal/workload"
)

// The quickstart from the package docs must work end-to-end.
func TestQuickstartFlow(t *testing.T) {
	net := libra.MustParseTopology("RI(4)_FC(8)_RI(4)_SW(32)")
	if net.NPUs() != 4096 {
		t.Fatalf("NPUs = %d", net.NPUs())
	}
	gpt3, err := libra.GPT3(net.NPUs())
	if err != nil {
		t.Fatal(err)
	}
	p := libra.NewProblem(net, 500, gpt3)
	eq, err := p.EqualBW()
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if r.WeightedTime > eq.WeightedTime*(1+1e-9) {
		t.Errorf("optimized %v slower than EqualBW %v", r.WeightedTime, eq.WeightedTime)
	}
	if math.Abs(r.BW.Total()-500) > 0.5 {
		t.Errorf("budget not honored: %v", r.BW.Total())
	}
}

func TestFacadePresets(t *testing.T) {
	for _, name := range []string{"4D-4K", "3D-4K", "3D-512", "3D-1K", "4D-2K", "3D-Torus"} {
		if _, err := libra.PresetTopology(name); err != nil {
			t.Errorf("PresetTopology(%s): %v", name, err)
		}
	}
	for _, name := range []string{"Turing-NLG", "GPT-3", "MSFT-1T", "DLRM", "ResNet-50"} {
		if _, err := libra.WorkloadPreset(name, 4096); err != nil {
			t.Errorf("WorkloadPreset(%s): %v", name, err)
		}
	}
}

func TestFacadeCostAndCollectives(t *testing.T) {
	net := libra.MustParseTopology("RI(4)_SW(2)")
	bw := libra.EqualBW(100, 2)
	c, err := libra.NetworkCost(libra.DefaultCostTable(), net, bw)
	if err != nil || c <= 0 {
		t.Errorf("NetworkCost = %v, %v", c, err)
	}
	ct := libra.CollectiveTime(libra.AllReduce, 1e9, net, bw)
	if ct <= 0 {
		t.Errorf("CollectiveTime = %v", ct)
	}
	pr, err := libra.SimulateCollective(libra.AllReduce, 1e9, net, bw, 8)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Makespan < ct*(1-1e-9) {
		t.Errorf("simulated %v beats analytic bound %v", pr.Makespan, ct)
	}
}

func TestFacadeSimAndCoDesign(t *testing.T) {
	net := libra.MustParseTopology("RI(4)_RI(4)_RI(4)")
	bw := libra.EqualBW(300, 3)
	w, err := libra.NewTransformer(libra.TransformerConfig{
		Name: "tiny", NumLayers: 2, Hidden: 1024, SeqLen: 128,
	}, libra.Strategy{TP: 4, DP: 16}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := libra.TrainingConfig{Net: net, Compute: libra.A100(), Chunks: 8}
	base, err := libra.SimulateIteration(cfg, w, bw)
	if err != nil {
		t.Fatal(err)
	}
	th, err := libra.ThemisIteration(cfg, w, bw)
	if err != nil {
		t.Fatal(err)
	}
	if th.Total > base.Total*(1+1e-9) {
		t.Errorf("Themis %v worse than baseline %v", th.Total, base.Total)
	}
	ts, err := libra.TacosAllGather(net, bw, 64e6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Makespan <= 0 {
		t.Errorf("Tacos makespan = %v", ts.Makespan)
	}
	art, _, err := libra.TacosAllReduceTime(net, bw, 64e6, 2)
	if err != nil || art <= 0 {
		t.Errorf("TacosAllReduceTime = %v, %v", art, err)
	}
	tr, err := libra.ThemisSchedule(libra.AllReduce, 64e6, net, bw, 4)
	if err != nil || tr.Makespan <= 0 {
		t.Errorf("ThemisSchedule = %v, %v", tr, err)
	}
}

// The redesigned construction paths — functional options, ProblemSpec,
// and the Engine — must agree with the classic path end to end.
func TestFacadeOptionsSpecEngine(t *testing.T) {
	net := libra.MustParseTopology("RI(4)_SW(8)")
	p, err := libra.New(net, 300,
		libra.WithPreset("Turing-NLG"),
		libra.WithObjective(libra.PerfOpt),
		libra.WithDimCap(2, 200),
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.OptimizeContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.BW[1] > 200+1e-6 {
		t.Errorf("dim cap ignored: %v", r.BW)
	}

	spec, err := p.Spec()
	if err != nil {
		t.Fatal(err)
	}
	engine := libra.NewEngine(libra.EngineConfig{Workers: 2, CacheSize: 8})
	defer engine.Close()
	er, err := engine.Optimize(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(er.Result.WeightedTime-r.WeightedTime) > 1e-12*r.WeightedTime {
		t.Errorf("engine result %v != direct result %v", er.Result.WeightedTime, r.WeightedTime)
	}
	hit, err := engine.Optimize(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Error("repeat optimize missed the engine cache")
	}
}

// Parallel multistart on a real LIBRA objective must return bit-identical
// results to the sequential path — and, under -race, proves the timemodel
// closures tolerate concurrent starts.
func TestFacadeParallelSolveDeterminism(t *testing.T) {
	net := libra.MustParseTopology("RI(4)_FC(8)_SW(16)")
	for _, seed := range []int64{1, 9} {
		mk := func(workers int) *libra.Problem {
			p, err := libra.New(net, 400,
				libra.WithPreset("GPT-3"),
				libra.WithObjective(libra.PerfPerCostOpt),
				libra.WithSolver(libra.SolverOptions{Seed: seed, Starts: 6, Workers: workers}),
			)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		seq, err := mk(1).Optimize()
		if err != nil {
			t.Fatal(err)
		}
		par, err := mk(4).Optimize()
		if err != nil {
			t.Fatal(err)
		}
		if seq.WeightedTime != par.WeightedTime || seq.Cost != par.Cost {
			t.Errorf("seed %d: parallel diverged: %+v vs %+v", seed, seq, par)
		}
		for d := range seq.BW {
			if seq.BW[d] != par.BW[d] {
				t.Errorf("seed %d dim %d: BW %v != %v", seed, d, seq.BW[d], par.BW[d])
			}
		}
	}
}

// The frontier facade must work end to end through an Engine.
func TestFacadeFrontier(t *testing.T) {
	engine := libra.NewEngine(libra.EngineConfig{})
	defer engine.Close()
	spec := &libra.ProblemSpec{
		Topology:  "3D-512",
		Workloads: []libra.WorkloadSpec{{Preset: "GPT-3"}},
		Solver:    &libra.SolverSpec{Starts: 2, MaxIters: 60},
	}
	res, err := libra.Frontier(context.Background(), engine, spec,
		libra.FrontierRequest{Budgets: []float64{250, 500}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || len(res.Frontier) == 0 || len(res.EqualBW) != 2 {
		t.Fatalf("frontier shape: %d points, %d pareto, %d baseline",
			len(res.Points), len(res.Frontier), len(res.EqualBW))
	}
	for _, p := range res.Points {
		if p.Err != nil {
			t.Fatalf("budget %v: %v", p.BudgetGBps, p.Err)
		}
	}
}

// The co-design subsystem on the paper's §VI-E scenario (MSFT-1T on
// 4D-4K at 1000 GB/s) must reproduce the classic per-strategy loop —
// workload.MSFT1TWithTP + Problem.Optimize, what examples/paracoopt did
// before the port — bit-identically: same joint optimum, same bandwidth
// vector, same baseline.
func TestFacadeCoDesignReproducesParacoopt(t *testing.T) {
	net, err := libra.PresetTopology("4D-4K")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 1000.0
	tps := []int{8, 16, 32, 64, 128, 256}

	// Classic path.
	baseW, err := workload.MSFT1TWithTP(net.NPUs(), 128)
	if err != nil {
		t.Fatal(err)
	}
	base, err := libra.NewProblem(net, budget, baseW).EqualBW()
	if err != nil {
		t.Fatal(err)
	}
	type classic struct {
		eq, opt libra.Result
	}
	direct := map[int]classic{}
	bestTP, bestTime := 0, math.Inf(1)
	for _, tp := range tps {
		w, err := workload.MSFT1TWithTP(net.NPUs(), tp)
		if err != nil {
			t.Fatal(err)
		}
		p := libra.NewProblem(net, budget, w)
		eq, err := p.EqualBW()
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		direct[tp] = classic{eq, r}
		if r.WeightedTime < bestTime {
			bestTP, bestTime = tp, r.WeightedTime
		}
	}

	// Co-design subsystem path.
	engine := libra.NewEngine(libra.EngineConfig{})
	defer engine.Close()
	rep, err := libra.CoDesign(context.Background(), engine, &libra.CoDesignSpec{
		Base: libra.ProblemSpec{
			Topology:   "4D-4K",
			BudgetGBps: budget,
			Workloads:  []libra.WorkloadSpec{{Preset: "MSFT-1T"}},
		},
		TPs: tps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline.Strategy.TP != 128 || rep.Baseline.EqualBW.WeightedTime != base.WeightedTime {
		t.Errorf("baseline = %v @ %v, want HP-(128, 32) @ %v",
			rep.Baseline.Strategy, rep.Baseline.EqualBW.WeightedTime, base.WeightedTime)
	}
	if len(rep.Candidates) != len(tps) {
		t.Fatalf("%d candidates, want %d", len(rep.Candidates), len(tps))
	}
	for _, c := range rep.Candidates {
		if c.Err != nil {
			t.Fatalf("%s: %v", c.Strategy, c.Err)
		}
		want, ok := direct[c.Strategy.TP]
		if !ok {
			t.Fatalf("unexpected candidate %s", c.Strategy)
		}
		if c.Optimized.WeightedTime != want.opt.WeightedTime {
			t.Errorf("TP=%d optimized time %v != classic %v",
				c.Strategy.TP, c.Optimized.WeightedTime, want.opt.WeightedTime)
		}
		if c.EqualBW == nil || c.EqualBW.WeightedTime != want.eq.WeightedTime {
			t.Errorf("TP=%d EqualBW diverged from classic path", c.Strategy.TP)
		}
		for d := range c.Optimized.BW {
			if c.Optimized.BW[d] != want.opt.BW[d] {
				t.Errorf("TP=%d dim %d: BW %v != classic %v",
					c.Strategy.TP, d, c.Optimized.BW[d], want.opt.BW[d])
			}
		}
	}
	best := rep.Best()
	if best == nil || best.Strategy.TP != bestTP || best.Optimized.WeightedTime != bestTime {
		t.Fatalf("joint optimum %v @ %v, classic loop found TP=%d @ %v",
			best.Strategy, best.Optimized.WeightedTime, bestTP, bestTime)
	}
	// The paper's interior peak: the joint optimum is neither the lowest
	// nor the highest TP, and beats the baseline strategy's co-design.
	if bestTP == tps[0] || bestTP == tps[len(tps)-1] || bestTP == 128 {
		t.Errorf("joint optimum TP=%d; expected an interior, non-default peak", bestTP)
	}
}

func TestFacadeEqualBWForCost(t *testing.T) {
	net := libra.MustParseTopology("RI(4)_FC(8)_RI(4)_SW(32)")
	bw, err := libra.EqualBWForCost(libra.DefaultCostTable(), net, 15e6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := libra.NetworkCost(libra.DefaultCostTable(), net, bw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c-15e6) > 1 {
		t.Errorf("iso-cost EqualBW costs %v", c)
	}
}
